package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gminer/internal/store"
	"gminer/internal/trace"
	"gminer/internal/wire"
)

// Fault tolerance (§7): "G-Miner achieves fault tolerance by saving a
// snapshot periodically. For each checkpoint, the master instructs each
// worker to dump the state of its partition."
//
// A worker checkpoints by quiescing its pipeline: the retriever and seeder
// pause, the task buffer flushes, and in-flight tasks (CMQ, CPQ, active)
// drain back into the task store or die. At that point every alive task is
// inactive in the store, so the snapshot = seed cursor + store contents +
// emitted results + aggregator partial is a consistent cut. Thanks to the
// task model "we do not need to checkpoint any message".
//
// Durability is epoch-committed: each worker writes a CRC32C-framed
// worker-<i>.epoch-<N>.ckpt (fsync file and directory before exposing it),
// acks the master with the payload checksum, and the master commits epoch
// N to the MANIFEST only once every worker acked. Restore resolves epochs
// through the manifest — newest committed first, previous committed as the
// fallback when a file is torn or corrupt — so recovery never feeds
// garbage to decodeSnapshot and never mixes epochs across workers on a
// full-job resume.

// workerSnapshot is one worker's checkpoint.
type workerSnapshot struct {
	Epoch      int64
	SeedCursor int64
	SeedsDone  bool
	TaskBytes  []byte // store.Snapshot payload
	Results    []string
	AggBytes   []byte // encoded aggregator partial; nil if no aggregator
}

func encodeSnapshot(s *workerSnapshot) []byte {
	w := wire.NewWriter(1024 + len(s.TaskBytes))
	w.Varint(s.Epoch)
	w.Varint(s.SeedCursor)
	w.Bool(s.SeedsDone)
	w.BytesField(s.TaskBytes)
	w.Uvarint(uint64(len(s.Results)))
	for _, r := range s.Results {
		w.String(r)
	}
	w.Bool(s.AggBytes != nil)
	if s.AggBytes != nil {
		w.BytesField(s.AggBytes)
	}
	return w.Bytes()
}

func decodeSnapshot(b []byte) (*workerSnapshot, error) {
	r := wire.NewReader(b)
	s := &workerSnapshot{}
	s.Epoch = r.Varint()
	s.SeedCursor = r.Varint()
	s.SeedsDone = r.Bool()
	s.TaskBytes = r.BytesField()
	n := r.Count(1)
	s.Results = make([]string, 0, n)
	for i := 0; i < n; i++ {
		s.Results = append(s.Results, r.String())
	}
	if r.Bool() {
		s.AggBytes = r.BytesField()
	}
	return s, r.Err()
}

// snapshotSink stores per-worker, per-epoch checkpoints plus the master's
// committed-epoch manifest: on disk when a checkpoint directory is
// configured, in memory otherwise. All methods are safe for concurrent use
// (workers put, the master commits, the recovery path loads).
type snapshotSink struct {
	dir         string
	workers     int
	fingerprint uint64
	// gen is the writer's fencing generation, stamped into checkpoint
	// filenames when non-zero so a zombie's late put() writes to its own
	// generation's file instead of clobbering its replacement's.
	gen int64
	// fence, when set (coordinator side of a multi-process job), makes
	// commit refuse acks bearing a fenced-out generation.
	fence *fenceTable

	mu  sync.Mutex
	mem map[int64]map[int][]byte // epoch → worker → raw snapshot payload
	man *manifest                // latest committed manifest, nil before the first commit
}

// newSnapshotSink opens the sink. gen is the writer's fencing generation
// (0 = unfenced single-process mode). With resume set, an existing
// MANIFEST in dir is loaded (the caller validates its fingerprint);
// without it, any stale checkpoint state in dir belongs to a previous job
// and is removed so in-job recovery can never restore another run's
// snapshot.
func newSnapshotSink(dir string, workers int, fingerprint uint64, gen int64, resume bool) (*snapshotSink, error) {
	s := &snapshotSink{dir: dir, workers: workers, fingerprint: fingerprint, gen: gen}
	if dir == "" {
		s.mem = make(map[int64]map[int][]byte)
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if !resume {
		s.clearDir()
		return s, nil
	}
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	man, err := decodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	s.man = man
	return s, nil
}

// clearDir removes the manifest and every checkpoint file of a previous
// job sharing the directory.
func (s *snapshotSink) clearDir() {
	_ = os.Remove(filepath.Join(s.dir, manifestName))
	matches, _ := filepath.Glob(filepath.Join(s.dir, "worker-*.ckpt"))
	for _, m := range matches {
		_ = os.Remove(m)
	}
	matches, _ = filepath.Glob(filepath.Join(s.dir, "worker-*.ckpt.tmp"))
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

// manifestView returns the current committed manifest (nil before the
// first commit).
func (s *snapshotSink) manifestView() *manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man
}

// committedEpochs returns the restorable epochs newest-first.
func (s *snapshotSink) committedEpochs() []int64 {
	return s.manifestView().epochs()
}

// put persists one worker's snapshot for an epoch and returns the payload
// checksum the worker acks to the master. On disk the write is framed,
// fsync'd and renamed into place, then the directory is fsync'd, so a
// crash at any point leaves either no file or a complete one.
func (s *snapshotSink) put(worker int, epoch int64, data []byte) (uint32, error) {
	crc := checksum(data)
	if s.mem != nil {
		s.mu.Lock()
		byWorker := s.mem[epoch]
		if byWorker == nil {
			byWorker = make(map[int][]byte)
			s.mem[epoch] = byWorker
		}
		byWorker[worker] = append([]byte(nil), data...)
		s.mu.Unlock()
		return crc, nil
	}
	path := s.path(worker, epoch)
	if err := writeFileDurable(path, frame(snapshotMagic, data)); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return crc, nil
}

// commit records epoch as the newest fully committed epoch: every worker's
// file for it is durable and checksummed by `crcs`. The previous committed
// epoch is retained as the restore fallback; anything older is GC'd. Run
// by the master once all msgCheckpointDone acks for the epoch arrived.
//
// gens, when non-nil, carries the fencing generation each ack arrived
// with; a commit is refused outright if any ack bears a generation the
// fence table has since moved past — a zombie must not vouch for an epoch
// after its replacement joined, even if its ack raced the admission.
func (s *snapshotSink) commit(epoch int64, crcs []uint32, gens []int64) error {
	if len(crcs) != s.workers {
		return fmt.Errorf("checkpoint: commit epoch %d with %d checksums, want %d", epoch, len(crcs), s.workers)
	}
	if s.fence != nil && gens != nil {
		for w, g := range gens {
			if s.fence.stale(w, g) {
				return fmt.Errorf("checkpoint: refusing commit of epoch %d: worker %d ack bears fenced generation %d (slot is at %d)",
					epoch, w, g, s.fence.current(w))
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next := &manifest{
		Fingerprint: s.fingerprint,
		Workers:     s.workers,
		Epoch:       epoch,
		EpochCRCs:   append([]uint32(nil), crcs...),
		PrevEpoch:   noEpoch,
	}
	if s.man != nil {
		next.PrevEpoch = s.man.Epoch
		next.PrevCRCs = s.man.EpochCRCs
	}
	if s.mem == nil {
		if err := writeFileDurable(filepath.Join(s.dir, manifestName), encodeManifest(next)); err != nil {
			return fmt.Errorf("checkpoint: manifest: %w", err)
		}
	}
	s.man = next
	s.gcLocked()
	return nil
}

// gcLocked drops every epoch the manifest no longer vouches for, keeping
// in-flight epochs newer than the committed one. Caller holds s.mu.
func (s *snapshotSink) gcLocked() {
	keep := func(epoch int64) bool {
		return epoch >= s.man.Epoch || epoch == s.man.PrevEpoch
	}
	if s.mem != nil {
		for epoch := range s.mem {
			if !keep(epoch) {
				delete(s.mem, epoch)
			}
		}
		return
	}
	matches, _ := filepath.Glob(filepath.Join(s.dir, "worker-*.epoch-*.ckpt"))
	for _, m := range matches {
		_, epoch, _, ok := parseCkptName(filepath.Base(m))
		if ok && !keep(epoch) {
			_ = os.Remove(m)
		}
	}
}

// parseCkptName decodes both checkpoint filename forms: the legacy
// worker-<w>.epoch-<e>.ckpt and the generation-stamped
// worker-<w>.epoch-<e>.gen-<g>.ckpt (gen 0 is reported for legacy names).
func parseCkptName(name string) (worker int, epoch, gen int64, ok bool) {
	if n, _ := fmt.Sscanf(name, "worker-%d.epoch-%d.gen-%d.ckpt", &worker, &epoch, &gen); n == 3 {
		return worker, epoch, gen, true
	}
	if n, err := fmt.Sscanf(name, "worker-%d.epoch-%d.ckpt", &worker, &epoch); n == 2 && err == nil {
		return worker, epoch, 0, true
	}
	return 0, 0, 0, false
}

// heldEpochsIn scans a checkpoint directory for one worker's snapshot
// files (any generation) and returns the distinct epochs found, newest
// first. Used by a restarting worker process to tell the coordinator what
// it can restore; the commit-time CRC is still the authority at restore,
// so listing an uncommitted or torn epoch here is harmless.
func heldEpochsIn(dir string, worker int) []int64 {
	matches, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("worker-%d.epoch-*.ckpt", worker)))
	seen := make(map[int64]bool)
	var epochs []int64
	for _, m := range matches {
		w, epoch, _, ok := parseCkptName(filepath.Base(m))
		if !ok || w != worker || seen[epoch] {
			continue
		}
		seen[epoch] = true
		epochs = append(epochs, epoch)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	if len(epochs) > maxHeldEpochs {
		epochs = epochs[:maxHeldEpochs]
	}
	return epochs
}

// load reads one worker's snapshot for a committed epoch, verifying the
// frame checksum and that it matches what the manifest recorded at commit
// time (a leftover file from an abandoned epoch cannot impersonate a
// committed one).
func (s *snapshotSink) load(worker int, epoch int64) (*workerSnapshot, error) {
	crcs := s.manifestView().crcsFor(epoch)
	if crcs == nil {
		return nil, fmt.Errorf("checkpoint: epoch %d is not committed", epoch)
	}
	if worker < 0 || worker >= len(crcs) {
		return nil, fmt.Errorf("checkpoint: no worker %d in epoch %d", worker, epoch)
	}
	return s.loadWith(worker, epoch, crcs[worker])
}

// loadWith reads one worker's snapshot for an epoch, verifying the frame
// and the caller-supplied commit-time checksum instead of consulting a
// local manifest. The multi-process restore path: only the coordinator
// holds the MANIFEST, so a rejoining worker process is handed the
// committed (epoch, crc) pairs over the control channel and verifies its
// local file against them.
func (s *snapshotSink) loadWith(worker int, epoch int64, wantCRC uint32) (*workerSnapshot, error) {
	var payload []byte
	var crc uint32
	if s.mem != nil {
		s.mu.Lock()
		data := s.mem[epoch][worker]
		s.mu.Unlock()
		if data == nil {
			return nil, fmt.Errorf("checkpoint: worker %d epoch %d missing", worker, epoch)
		}
		payload, crc = data, checksum(data)
	} else {
		// The file may have been written under any generation (a restarted
		// process restores its predecessor's snapshots), so try every name
		// form; the commit-time CRC decides which file is the real one.
		var lastErr error
		for _, p := range s.candidatePaths(worker, epoch) {
			b, err := os.ReadFile(p)
			if err != nil {
				lastErr = fmt.Errorf("checkpoint: %w", err)
				continue
			}
			pl, c, err := unframe(snapshotMagic, b)
			if err != nil {
				lastErr = err
				continue
			}
			if c != wantCRC {
				lastErr = fmt.Errorf("checkpoint: worker %d epoch %d checksum %08x does not match manifest %08x",
					worker, epoch, c, wantCRC)
				continue
			}
			payload, crc = pl, c
			break
		}
		if payload == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("checkpoint: worker %d epoch %d missing", worker, epoch)
			}
			return nil, lastErr
		}
	}
	if crc != wantCRC {
		return nil, fmt.Errorf("checkpoint: worker %d epoch %d checksum %08x does not match manifest %08x",
			worker, epoch, crc, wantCRC)
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: worker %d epoch %d: %w", worker, epoch, err)
	}
	if snap.Epoch != epoch {
		return nil, fmt.Errorf("checkpoint: worker %d file for epoch %d carries epoch %d", worker, epoch, snap.Epoch)
	}
	return snap, nil
}

// get resolves one worker's snapshot from the newest committed epoch,
// falling back to the previous committed epoch on a torn or corrupt file.
// (nil, nil) means no committed checkpoint exists: restart from scratch.
func (s *snapshotSink) get(worker int) (*workerSnapshot, error) {
	var firstErr error
	for _, epoch := range s.committedEpochs() {
		snap, err := s.load(worker, epoch)
		if err == nil {
			return snap, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, nil
}

// loadAll resolves one consistent cut: the newest committed epoch whose
// every worker snapshot verifies. A single bad file fails the whole epoch
// over to the previous committed one, so a full-job resume never mixes
// epochs across workers.
func (s *snapshotSink) loadAll() (int64, []*workerSnapshot, error) {
	var lastErr error
	for _, epoch := range s.committedEpochs() {
		snaps := make([]*workerSnapshot, s.workers)
		ok := true
		for w := 0; w < s.workers; w++ {
			snap, err := s.load(w, epoch)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			snaps[w] = snap
		}
		if ok {
			return epoch, snaps, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("checkpoint: no committed epoch")
	}
	return 0, nil, lastErr
}

func (s *snapshotSink) path(worker int, epoch int64) string {
	if s.gen > 0 {
		return filepath.Join(s.dir, fmt.Sprintf("worker-%d.epoch-%d.gen-%d.ckpt", worker, epoch, s.gen))
	}
	return filepath.Join(s.dir, fmt.Sprintf("worker-%d.epoch-%d.ckpt", worker, epoch))
}

// candidatePaths lists the filenames a (worker, epoch) snapshot may live
// under, this sink's own generation first, then the legacy un-stamped
// name, then any other generation's file.
func (s *snapshotSink) candidatePaths(worker int, epoch int64) []string {
	own := s.path(worker, epoch)
	paths := []string{own}
	if legacy := filepath.Join(s.dir, fmt.Sprintf("worker-%d.epoch-%d.ckpt", worker, epoch)); legacy != own {
		paths = append(paths, legacy)
	}
	matches, _ := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("worker-%d.epoch-%d.gen-*.ckpt", worker, epoch)))
	for _, m := range matches {
		if m != own {
			paths = append(paths, m)
		}
	}
	return paths
}

// writeFileDurable writes data to path with the tmp + fsync + rename +
// dir-fsync dance, so the named file is either absent or complete and
// survives power loss once the call returns.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms cannot fsync directories; strings.Contains filters the
// expected failure modes there rather than failing the checkpoint.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!strings.Contains(err.Error(), "invalid argument") &&
		!strings.Contains(err.Error(), "not supported") {
		return err
	}
	return nil
}

// checkpoint quiesces the pipeline and persists a snapshot, then acks the
// master with the payload checksum. Runs on its own goroutine (must not
// block the comm loop, which keeps serving pull requests during the global
// checkpoint). Failure to snapshot or persist is acked negatively so the
// master abandons the epoch immediately instead of waiting out a timeout.
func (w *Worker) checkpoint(epoch int64) {
	w.paused.Store(true)
	defer w.paused.Store(false)
	var ckptStart time.Time
	if w.trCkpt.Active() {
		ckptStart = time.Now()
		w.trCkpt.Event(trace.EvCheckpointBegin, uint64(epoch))
	}

	// Quiesce: wait until every alive task is inactive in the store.
	deadline := time.Now().Add(w.cfg.CheckpointQuiesceTimeout)
	for {
		if w.stopped() {
			return
		}
		w.flushBatch(w.buffer.drain())
		if int64(w.store.Size()) == w.inflight.Load() && w.buffer.len() == 0 {
			break
		}
		if time.Now().After(deadline) {
			// Could not quiesce (pathological pull starvation); skip this
			// checkpoint rather than stall the job. The negative ack lets
			// the master abandon the epoch right away.
			w.trCkpt.Event(trace.EvCheckpointSkip, uint64(epoch))
			w.ackCheckpoint(epoch, 0, false)
			return
		}
		time.Sleep(300 * time.Microsecond)
	}

	taskBytes, err := w.store.Snapshot()
	if err != nil {
		w.checkpointFailed(epoch, err)
		return
	}
	snap := &workerSnapshot{
		Epoch:      epoch,
		SeedCursor: w.seedCursor.Load(),
		SeedsDone:  w.seedsDone.Load(),
		TaskBytes:  taskBytes,
		Results:    w.takeResults(),
	}
	if w.agg != nil {
		wr := wire.NewWriter(32)
		w.aggMu.Lock()
		w.agg.Encode(wr, w.aggPartial)
		w.aggMu.Unlock()
		snap.AggBytes = wr.Bytes()
	}
	var crc uint32
	if w.snapshots != nil {
		crc, err = w.snapshots.put(w.id, epoch, encodeSnapshot(snap))
		if err != nil {
			w.checkpointFailed(epoch, err)
			return
		}
	}
	w.trCkpt.ObserveSpan(trace.MetricCheckpoint, trace.EvCheckpointEnd, ckptStart, uint64(epoch))
	w.ackCheckpoint(epoch, crc, true)
}

// checkpointFailed surfaces a snapshot/persist failure: trace event,
// metrics counter, last-error on the worker (collected into
// cluster.Result) and a negative ack to the master.
func (w *Worker) checkpointFailed(epoch int64, err error) {
	w.trCkpt.Event(trace.EvCheckpointFail, uint64(epoch))
	w.counters.CheckpointFailed()
	w.ckptMu.Lock()
	w.ckptErr = fmt.Errorf("worker %d epoch %d: %w", w.id, epoch, err)
	w.ckptMu.Unlock()
	w.ackCheckpoint(epoch, 0, false)
}

// ackCheckpoint reports the epoch's outcome to the master, stamped with
// the writer's fencing generation. A killed worker stays silent, like a
// crashed machine.
func (w *Worker) ackCheckpoint(epoch int64, crc uint32, ok bool) {
	if w.killed.Load() {
		return
	}
	var gen int64
	if w.snapshots != nil {
		gen = w.snapshots.gen
	}
	_ = w.ep.Send(w.masterNode, msgCheckpointDone, encodeCkptAck(epoch, crc, ok, gen))
}

// lastCheckpointErr returns the most recent checkpoint failure, nil if all
// checkpoints persisted.
func (w *Worker) lastCheckpointErr() error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	return w.ckptErr
}

// applySnapshot restores worker state from a checkpoint before the
// pipeline starts. The task payload is decoded up front so a corrupt
// snapshot mutates nothing: the caller falls back to an older epoch (or
// scratch) instead of silently dropping tasks mid-restore.
func (w *Worker) applySnapshot(s *workerSnapshot) error {
	tasks, err := store.DecodeSnapshot(s.TaskBytes, w.algo)
	if err != nil {
		return fmt.Errorf("cluster: restore worker %d epoch %d: %w", w.id, s.Epoch, err)
	}
	w.seedCursor.Store(s.SeedCursor)
	w.seedsDone.Store(s.SeedsDone)
	w.results = append(w.results, s.Results...)
	if w.agg != nil && s.AggBytes != nil {
		w.aggPartial = w.agg.Decode(wire.NewReader(s.AggBytes))
	}
	for _, t := range tasks {
		w.intake(t, false)
	}
	w.flushBatch(w.buffer.drain())
	return nil
}
