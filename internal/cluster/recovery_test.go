package cluster_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// slowMark is a test algorithm: every vertex seeds a task that pulls one
// remote-ish candidate (its first neighbor), sleeps briefly, and emits a
// record derived from the seed. Exactly-once output across failures is
// the invariant under test.
type slowMark struct {
	core.NoContext
	delay time.Duration
}

func (*slowMark) Name() string { return "slowmark" }

func (s *slowMark) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	if len(v.Adj) > 0 {
		t.Cands = v.Adj[:1]
	}
	spawn(t)
}

func (s *slowMark) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	time.Sleep(s.delay)
	env.Emit(fmt.Sprintf("v %d", t.Subgraph.Vertices()[0]))
}

func expectedMarks(g *graph.Graph) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		out = append(out, fmt.Sprintf("v %d", v.ID))
		return true
	})
	sort.Strings(out)
	return out
}

func TestRecoveryFromCheckpointExactlyOnce(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 61})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 3
	cfg.Threads = 2
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.Partitioner = partition.Hash{}
	// Stealing off: a migration in flight at kill time would be lost, a
	// hole the paper's checkpoint protocol shares (tasks migrated after
	// the victim's checkpoint are not covered by anyone's snapshot).
	cfg.Stealing = false

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let some checkpoints land, then crash worker 1 and recover it.
	time.Sleep(15 * time.Millisecond)
	job.KillWorker(1)
	time.Sleep(2 * time.Millisecond)
	if err := job.RecoverWorker(1); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func TestAutoRecoveryViaFailureDetector(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 67})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 3
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.FailTimeout = 10 * time.Millisecond
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * time.Millisecond)
	job.KillWorker(2)
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered == 0 {
		t.Fatal("expected at least one auto-recovery")
	}
	assertSameRecords(t, res.Records, want)
}

func TestRecoveryWithoutCheckpointRestartsFromScratch(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1200, Seed: 71})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 2
	cfg.CheckpointEvery = 0 // no checkpoints at all
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	job.KillWorker(0)
	time.Sleep(time.Millisecond)
	if err := job.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

// waitForManifest polls until the checkpoint directory holds a committed
// MANIFEST (the master writes it only after every worker acked an epoch).
func waitForManifest(t *testing.T, dir string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no committed checkpoint within %v", deadline)
}

// TestResumeFullJobByteIdentical is the crash-restart soak: abandon a job
// mid-run (the process-death stand-in), then relaunch with -resume from the
// same checkpoint directory and require output byte-identical to a
// fault-free run.
func TestResumeFullJobByteIdentical(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 79})
	want := expectedMarks(g)

	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = dir
	cfg.Partitioner = partition.Hash{}
	// Stealing off: see TestRecoveryFromCheckpointExactlyOnce.
	cfg.Stealing = false

	job, err := cluster.Start(g, &slowMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitForManifest(t, dir, 30*time.Second)
	job.Stop() // crash: the run's in-memory output is abandoned
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	res, err := cluster.Run(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func TestResumeRefusesMismatchedFingerprint(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1200, Seed: 73})
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CheckpointEvery = 2 * time.Millisecond
	cfg.CheckpointDir = dir
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitForManifest(t, dir, 30*time.Second)
	job.Stop()
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	cfg.Workers = cfg.Workers + 1 // changes the partition map → new fingerprint
	if _, err := cluster.Start(g, &slowMark{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched fingerprint accepted: %v", err)
	}
}

func TestResumeWithoutCheckpointErrors(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 400, Seed: 5})
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}

	cfg.Resume = true
	if _, err := cluster.Start(g, &slowMark{}, cfg); err == nil {
		t.Fatal("resume without a checkpoint directory accepted")
	}
	cfg.CheckpointDir = t.TempDir() // empty: no committed epoch to resume
	if _, err := cluster.Start(g, &slowMark{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "no committed checkpoint") {
		t.Fatalf("resume from an empty directory accepted: %v", err)
	}
}

// TestRecoverBeforeFirstCommittedEpoch kills and recovers a worker before
// any epoch could commit: the replacement restarts from scratch and the
// snapshot-held Results of other workers must not duplicate.
func TestRecoverBeforeFirstCommittedEpoch(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1200, Seed: 89})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 2
	cfg.CheckpointEvery = time.Hour // enabled, but no epoch ever completes
	cfg.CheckpointDir = t.TempDir()
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	job.KillWorker(0)
	time.Sleep(time.Millisecond)
	if err := job.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

// TestRecoverWorkerOverTCP exercises kill + restore on the real socket
// transport: the node's endpoint resets, peers' cached connections die, and
// their send-retry redials must reach the replacement worker.
func TestRecoverWorkerOverTCP(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 97})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.UseTCP = true
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.Partitioner = partition.Hash{}
	cfg.Stealing = false

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	job.KillWorker(1)
	time.Sleep(2 * time.Millisecond)
	if err := job.RecoverWorker(1); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}
