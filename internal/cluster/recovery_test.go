package cluster_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// slowMark is a test algorithm: every vertex seeds a task that pulls one
// remote-ish candidate (its first neighbor), sleeps briefly, and emits a
// record derived from the seed. Exactly-once output across failures is
// the invariant under test.
type slowMark struct {
	core.NoContext
	delay time.Duration
}

func (*slowMark) Name() string { return "slowmark" }

func (s *slowMark) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	if len(v.Adj) > 0 {
		t.Cands = v.Adj[:1]
	}
	spawn(t)
}

func (s *slowMark) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	time.Sleep(s.delay)
	env.Emit(fmt.Sprintf("v %d", t.Subgraph.Vertices()[0]))
}

func expectedMarks(g *graph.Graph) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		out = append(out, fmt.Sprintf("v %d", v.ID))
		return true
	})
	sort.Strings(out)
	return out
}

func TestRecoveryFromCheckpointExactlyOnce(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 61})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 3
	cfg.Threads = 2
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.Partitioner = partition.Hash{}
	// Stealing off: a migration in flight at kill time would be lost, a
	// hole the paper's checkpoint protocol shares (tasks migrated after
	// the victim's checkpoint are not covered by anyone's snapshot).
	cfg.Stealing = false

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let some checkpoints land, then crash worker 1 and recover it.
	time.Sleep(15 * time.Millisecond)
	job.KillWorker(1)
	time.Sleep(2 * time.Millisecond)
	if err := job.RecoverWorker(1); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func TestAutoRecoveryViaFailureDetector(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 67})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 3
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.FailTimeout = 10 * time.Millisecond
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * time.Millisecond)
	job.KillWorker(2)
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered == 0 {
		t.Fatal("expected at least one auto-recovery")
	}
	assertSameRecords(t, res.Records, want)
}

func TestRecoveryWithoutCheckpointRestartsFromScratch(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1200, Seed: 71})
	want := expectedMarks(g)

	cfg := smallConfig()
	cfg.Workers = 2
	cfg.CheckpointEvery = 0 // no checkpoints at all
	cfg.Partitioner = partition.Hash{}

	job, err := cluster.Start(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	job.KillWorker(0)
	time.Sleep(time.Millisecond)
	if err := job.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}
