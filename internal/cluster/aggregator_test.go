package cluster_test

import (
	"sync/atomic"
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// aggProbe checks that aggregator values flow worker → master → workers:
// every task reports its seed ID to a max aggregator and records the
// largest global value it observed. If broadcasting works, late tasks on
// every worker must observe values that originated on other workers.
type aggProbe struct {
	core.NoContext
	maxSeen atomic.Int64
	delay   time.Duration
}

func (*aggProbe) Name() string { return "aggprobe" }

func (*aggProbe) Aggregator() core.Aggregator { return core.MaxIntAggregator{} }

func (p *aggProbe) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	spawn(t)
}

func (p *aggProbe) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	time.Sleep(p.delay) // give the periodic sync time to act
	env.AggUpdate(int(t.Subgraph.Vertices()[0]))
	if g, ok := env.AggGlobal().(int); ok {
		for {
			cur := p.maxSeen.Load()
			if int64(g) <= cur || p.maxSeen.CompareAndSwap(cur, int64(g)) {
				break
			}
		}
	}
}

func TestAggregatorGlobalPropagates(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2000, Seed: 401})
	probe := &aggProbe{delay: 50 * time.Microsecond}
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	res, err := cluster.Run(g, probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxID := int64(0)
	g.ForEach(func(v *graph.Vertex) bool {
		if int64(v.ID) > maxID {
			maxID = int64(v.ID)
		}
		return true
	})
	if got := res.AggGlobal.(int); int64(got) != maxID {
		t.Fatalf("final global %d want %d", got, maxID)
	}
	// Some task must have observed a near-max global value during the
	// run (not only at the end), proving the broadcast path works.
	if probe.maxSeen.Load() < maxID/2 {
		t.Fatalf("tasks never observed broadcast globals: saw %d of max %d",
			probe.maxSeen.Load(), maxID)
	}
}

func TestKitchenSink(t *testing.T) {
	// Everything on at once: TCP transport, stealing, checkpoints, spill,
	// LSH, adaptive policy, sampling — and the answer must still be exact.
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 409})
	want := algo.RefMaxClique(g)
	cfg := smallConfig()
	cfg.UseTCP = true
	cfg.Stealing = true
	cfg.StealPolicy = cluster.NewAdaptiveCostPolicy(0.9)
	cfg.CheckpointEvery = 5 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.SpillDir = t.TempDir()
	cfg.StoreMemCapacity = 32
	cfg.SampleEvery = 2 * time.Millisecond
	cfg.Partitioner = partition.Skewed{Bias: 0.6}
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("kitchen sink mcf: got %d want %d", got, want)
	}
	if res.Total.DiskWrite == 0 {
		t.Fatal("expected spilling with a 32-task store")
	}
}
