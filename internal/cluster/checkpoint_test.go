package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, []byte("hello"), make([]byte, 4096)}
	for _, p := range payloads {
		b := frame(snapshotMagic, p)
		got, crc, err := unframe(snapshotMagic, b)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(p), err)
		}
		if crc != checksum(p) {
			t.Fatalf("crc mismatch")
		}
		if len(got) != len(p) {
			t.Fatalf("payload %d bytes came back as %d", len(p), len(got))
		}
	}
}

func TestUnframeRejectsCorruption(t *testing.T) {
	good := frame(snapshotMagic, []byte("snapshot payload"))
	cases := map[string][]byte{
		"wrong magic":          frame(manifestMagic, []byte("snapshot payload")),
		"empty":                {},
		"magic only":           []byte(snapshotMagic),
		"truncated":            good[:len(good)-3],
		"trailing":             append(append([]byte(nil), good...), 0xAA),
		"flipped payload byte": flip(good, len(snapshotMagic)+3),
		"flipped crc byte":     flip(good, len(good)-1),
		"flipped magic byte":   flip(good, 0),
	}
	for name, b := range cases {
		if _, _, err := unframe(snapshotMagic, b); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestManifestCodec(t *testing.T) {
	cases := []*manifest{
		{Fingerprint: 0xdeadbeef, Workers: 3, Epoch: 7,
			EpochCRCs: []uint32{1, 2, 3}, PrevEpoch: 5, PrevCRCs: []uint32{4, 5, 6}},
		{Fingerprint: 1, Workers: 1, Epoch: 1, EpochCRCs: []uint32{9},
			PrevEpoch: noEpoch, PrevCRCs: []uint32{}},
	}
	for _, m := range cases {
		got, err := decodeManifest(encodeManifest(m))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("got %+v want %+v", got, m)
		}
	}
}

func TestManifestCodecRejectsInvalid(t *testing.T) {
	bad := []*manifest{
		// CRC count does not match worker count.
		{Fingerprint: 1, Workers: 3, Epoch: 2, EpochCRCs: []uint32{1}, PrevEpoch: noEpoch},
		// Previous epoch newer than the committed one.
		{Fingerprint: 1, Workers: 1, Epoch: 2, EpochCRCs: []uint32{1}, PrevEpoch: 9, PrevCRCs: []uint32{2}},
		// Previous epoch without its checksums.
		{Fingerprint: 1, Workers: 2, Epoch: 2, EpochCRCs: []uint32{1, 2}, PrevEpoch: 1},
		// No workers at all.
		{Fingerprint: 1, Workers: 0, Epoch: 1, PrevEpoch: noEpoch},
	}
	for i, m := range bad {
		if _, err := decodeManifest(encodeManifest(m)); err == nil {
			t.Errorf("case %d: invalid manifest decoded cleanly: %+v", i, m)
		}
	}
	if _, err := decodeManifest([]byte{1, 2, 3}); err == nil {
		t.Error("garbage decoded cleanly")
	}
}

func TestSinkCorruptLatestEpochFallsBack(t *testing.T) {
	dir := t.TempDir()
	sink, err := newSnapshotSink(dir, 2, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	commitEpoch := func(epoch int64, cursor int64) {
		crcs := make([]uint32, 2)
		for w := 0; w < 2; w++ {
			snap := &workerSnapshot{Epoch: epoch, SeedCursor: cursor, TaskBytes: []byte{}, Results: []string{}}
			crc, err := sink.put(w, epoch, encodeSnapshot(snap))
			if err != nil {
				t.Fatal(err)
			}
			crcs[w] = crc
		}
		if err := sink.commit(epoch, crcs, nil); err != nil {
			t.Fatal(err)
		}
	}
	commitEpoch(1, 10)
	commitEpoch(2, 20)

	// Corrupt worker 0's newest file: restore must fall back to epoch 1,
	// and a full-cut load must fall back for BOTH workers (same epoch).
	corruptFile(t, sink.path(0, 2))
	if snap, err := sink.get(0); err != nil || snap == nil || snap.Epoch != 1 {
		t.Fatalf("worker 0: got %+v err %v, want epoch 1", snap, err)
	}
	if snap, err := sink.get(1); err != nil || snap == nil || snap.Epoch != 2 {
		t.Fatalf("worker 1 single-restore: got %+v err %v, want epoch 2", snap, err)
	}
	epoch, snaps, err := sink.loadAll()
	if err != nil || epoch != 1 {
		t.Fatalf("loadAll: epoch %d err %v, want epoch 1", epoch, err)
	}
	for w, s := range snaps {
		if s.Epoch != 1 || s.SeedCursor != 10 {
			t.Fatalf("worker %d restored %+v from mixed epochs", w, s)
		}
	}

	// Both epochs corrupt: loud error, not garbage.
	corruptFile(t, sink.path(0, 1))
	if _, err := sink.get(0); err == nil {
		t.Fatal("all-corrupt restore did not error")
	}
}

// corruptFile flips one byte in the framed payload region.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSinkStaleFileCannotImpersonateCommittedEpoch(t *testing.T) {
	dir := t.TempDir()
	sink, err := newSnapshotSink(dir, 1, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	snap := &workerSnapshot{Epoch: 1, SeedCursor: 3, TaskBytes: []byte{}, Results: []string{}}
	crc, err := sink.put(0, 1, encodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.commit(1, []uint32{crc}, nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite the committed file with a DIFFERENT validly-framed snapshot
	// (an abandoned retry, say). Its frame CRC is fine, but it is not what
	// the manifest vouched for — restore must reject it.
	other := &workerSnapshot{Epoch: 1, SeedCursor: 99, TaskBytes: []byte{}, Results: []string{}}
	if err := os.WriteFile(sink.path(0, 1), frame(snapshotMagic, encodeSnapshot(other)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sink.get(0); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("impersonating file accepted: %v", err)
	}
}

func TestSinkGCKeepsOnlyTwoCommittedEpochs(t *testing.T) {
	dir := t.TempDir()
	sink, err := newSnapshotSink(dir, 1, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := int64(1); epoch <= 3; epoch++ {
		snap := &workerSnapshot{Epoch: epoch, TaskBytes: []byte{}, Results: []string{}}
		crc, err := sink.put(0, epoch, encodeSnapshot(snap))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.commit(epoch, []uint32{crc}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(sink.path(0, 1)); !os.IsNotExist(err) {
		t.Fatalf("epoch 1 not GC'd: %v", err)
	}
	for epoch := int64(2); epoch <= 3; epoch++ {
		if _, err := os.Stat(sink.path(0, epoch)); err != nil {
			t.Fatalf("epoch %d missing: %v", epoch, err)
		}
	}
	if want := []int64{3, 2}; !reflect.DeepEqual(sink.committedEpochs(), want) {
		t.Fatalf("committed %v want %v", sink.committedEpochs(), want)
	}
}

func TestSinkFreshStartWipesStaleState(t *testing.T) {
	dir := t.TempDir()
	first, err := newSnapshotSink(dir, 1, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	snap := &workerSnapshot{Epoch: 1, TaskBytes: []byte{}, Results: []string{}}
	crc, _ := first.put(0, 1, encodeSnapshot(snap))
	if err := first.commit(1, []uint32{crc}, nil); err != nil {
		t.Fatal(err)
	}

	// A resume sink sees the manifest; a fresh sink wipes it so a stale
	// job's snapshots can never leak into in-job recovery.
	resumed, err := newSnapshotSink(dir, 1, 7, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.manifestView() == nil {
		t.Fatal("resume sink did not load the manifest")
	}
	fresh, err := newSnapshotSink(dir, 1, 7, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.manifestView() != nil {
		t.Fatal("fresh sink kept the stale manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatal("stale MANIFEST survived a fresh start")
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "worker-*.ckpt")); len(matches) != 0 {
		t.Fatalf("stale checkpoint files survived: %v", matches)
	}
}

func TestJobFingerprintSensitivity(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 400, Seed: 3})
	g2 := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 400, Seed: 4})
	base := Config{Workers: 3, Partitioner: partition.Hash{}}
	fp := jobFingerprint(g, "tc", base)
	if fp != jobFingerprint(g, "tc", base) {
		t.Fatal("fingerprint not deterministic")
	}
	diff := map[string]uint64{
		"algorithm":   jobFingerprint(g, "mcf", base),
		"workers":     jobFingerprint(g, "tc", Config{Workers: 4, Partitioner: partition.Hash{}}),
		"partitioner": jobFingerprint(g, "tc", Config{Workers: 3, Partitioner: partition.BDG{}}),
		"graph":       jobFingerprint(g2, "tc", base),
	}
	for name, got := range diff {
		if got == fp {
			t.Errorf("changing the %s did not change the fingerprint", name)
		}
	}
}

// ckptMark seeds one task per vertex that pulls its first neighbor and
// emits one record; deterministic output = the exactly-once oracle.
type ckptMark struct {
	core.NoContext
	delay time.Duration
}

func (*ckptMark) Name() string { return "ckptmark" }

func (c *ckptMark) Seed(v *graph.Vertex, spawn func(*core.Task)) {
	t := &core.Task{}
	t.Subgraph.AddVertex(v.ID)
	if len(v.Adj) > 0 {
		t.Cands = v.Adj[:1]
	}
	spawn(t)
}

func (c *ckptMark) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	time.Sleep(c.delay)
	env.Emit(fmt.Sprintf("v %d", t.Subgraph.Vertices()[0]))
}

func ckptWant(g *graph.Graph) []string {
	var out []string
	g.ForEach(func(v *graph.Vertex) bool {
		out = append(out, fmt.Sprintf("v %d", v.ID))
		return true
	})
	sort.Strings(out)
	return out
}

// waitForCommittedEpochs polls the on-disk MANIFEST until it names at
// least n committed epochs (rename is atomic, so every read decodes).
func waitForCommittedEpochs(t *testing.T, dir string, n int, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if b, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
			if man, err := decodeManifest(b); err == nil && len(man.epochs()) >= n {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no manifest with %d committed epochs within %v", n, deadline)
}

// TestResumeCorruptNewestEpochFallsBack is the acceptance scenario: kill a
// job mid-run, corrupt every file of the newest committed epoch, and
// verify -resume restores the previous committed epoch and still produces
// the exact fault-free output.
func TestResumeCorruptNewestEpochFallsBack(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 83})
	want := ckptWant(g)
	dir := t.TempDir()

	cfg := Config{
		Workers: 3, Threads: 2,
		CacheCapacity: 512, StoreMemCapacity: 256,
		UseLSH:           true,
		ProgressInterval: time.Millisecond,
		CheckpointEvery:  3 * time.Millisecond,
		CheckpointDir:    dir,
		Partitioner:      partition.Hash{},
		Stealing:         false,
	}
	job, err := Start(g, &ckptMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitForCommittedEpochs(t, dir, 2, 30*time.Second)
	job.Stop() // simulated crash: the in-memory run is abandoned
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	man, err := decodeManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < cfg.Workers; w++ {
		corruptFile(t, filepath.Join(dir, fmt.Sprintf("worker-%d.epoch-%d.ckpt", w, man.Epoch)))
	}

	cfg.Resume = true
	cfg.CheckpointEvery = 0 // do not advance epochs during the assert run
	res, err := Run(g, &ckptMark{delay: 50 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("resumed records differ: got %d want %d", len(res.Records), len(want))
	}
}
