package cluster

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/cache"
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/lsh"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/spill"
	"gminer/internal/store"
	"gminer/internal/trace"
	"gminer/internal/transport"
	"gminer/internal/wire"
)

// pendingTask is one CMQ entry: a task waiting for `remaining` remote
// candidate vertices to arrive.
type pendingTask struct {
	t         *core.Task
	remaining int
}

// pullWork is one incoming pull request queued for the serve pool.
type pullWork struct {
	from    int
	payload []byte
}

// pullState tracks one in-flight vertex pull: the tasks waiting for it,
// when it was (last) requested for the RTT metric, and the retry/backoff
// state used when the request or response is lost to a crashed worker or
// a lossy network.
type pullState struct {
	waiters     []*pendingTask
	requestedAt time.Time
	retryAt     time.Time // next re-request time (exponential backoff)
	attempts    int       // retries so far
	owner       int       // last resolved owner (re-resolved on retry)
}

// Worker is one slave node (§5.1): it owns a graph partition (vertex
// table), runs the task pipeline of Figure 2, serves pull requests from
// other workers (request listener) and reports progress to the master.
type Worker struct {
	id   int
	cfg  Config
	algo core.Algorithm
	agg  core.Aggregator // nil when the algorithm has no aggregator
	ep   transport.Endpoint

	assign    *partition.Assignment
	local     map[graph.VertexID]*graph.Vertex // local vertex table
	localIDs  []graph.VertexID                 // seed scan order
	graphFoot int64

	store   *store.Store
	cache   *cache.RCV
	cpq     *taskQueue
	buffer  *taskBuffer
	spiller *spill.Spiller

	counters *metrics.Counters

	// CMQ state.
	pendMu       sync.Mutex
	pendCond     *sync.Cond
	pulls        map[graph.VertexID]*pullState
	pendingTasks int
	// pullBatch accumulates pull requests per destination so many tasks'
	// pulls ride one message ("for efficient network transmission", the
	// same batching §6.2 applies to task migration).
	pullBatch map[int][]graph.VertexID
	pullCount int
	// pullSpare is the previous flush's batch map, kept (with its
	// per-owner slices truncated) so steady-state flushing allocates
	// neither the map nor the slices.
	pullSpare map[int][]graph.VertexID
	// retryRng jitters pull-retry backoff so a lost batch does not come
	// back as a synchronized burst. Guarded by pendMu.
	retryRng *rand.Rand

	// Progress counters.
	inflight   atomic.Int64 // alive tasks owned by this worker
	activity   atomic.Int64 // bumps on intake/death/migration
	tasksSent  atomic.Int64
	tasksRecv  atomic.Int64
	seedsDone  atomic.Bool
	seedCursor atomic.Int64

	// Aggregator state.
	aggMu      sync.Mutex
	aggPartial any
	aggGlobal  any

	// Output collector.
	resMu   sync.Mutex
	results []string

	stealBackoff atomic.Int32

	// pullServe feeds the pull-serve worker pool: the comm loop enqueues
	// incoming pull requests and PullServeWorkers goroutines encode and
	// send the responses, so one expensive neighborhood read cannot
	// head-of-line-block every other requester. Nil when
	// PullServeWorkers <= 1 (requests are served inline, the paper's
	// single request listener).
	pullServe chan pullWork

	paused atomic.Bool // checkpoint quiesce
	killed atomic.Bool // failure simulation: drop all work silently
	// ckptErr is the most recent checkpoint failure (surfaced on
	// cluster.Result so operators see degraded durability, not silence).
	ckptMu   sync.Mutex
	ckptErr  error
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	nextTaskID atomic.Uint64

	masterNode  int
	snapshots   *snapshotSink
	stealPolicy StealPolicy

	// Memory budget (Config.MemBudget): budgetCharged is what this worker
	// currently has charged (store + cache bytes; only touched from the
	// progress loop), oomFn aborts the job when a charge overflows.
	budgetCharged int64
	oomFn         func(error)

	// Trace handles, one per pipeline component (zero handles drop
	// everything when Config.Tracer is nil).
	trSeed  trace.Handle
	trRetr  trace.Handle
	trExec  trace.Handle
	trSteal trace.Handle
	trCkpt  trace.Handle
	// lastStealReq is when this worker last sent a steal REQ (UnixNano),
	// for the thief-side migration latency histogram. 0 = none pending.
	lastStealReq atomic.Int64
}

// localTable is one worker's partition view: the vertex table (the hash
// table of Figure 4) plus the hash-shuffled seed scan order. It is
// read-only after build, so a Session shares one instance across every
// job's worker i instead of rebuilding it per job.
type localTable struct {
	vertices  map[graph.VertexID]*graph.Vertex
	ids       []graph.VertexID
	footprint int64
}

// buildLocalTable loads worker id's partition from the shared frozen graph.
func buildLocalTable(g *graph.Graph, assign *partition.Assignment, id int) *localTable {
	ids := assign.Local(g, id)
	lt := &localTable{
		vertices: make(map[graph.VertexID]*graph.Vertex, len(ids)),
		ids:      ids,
	}
	for _, vid := range ids {
		v := g.Vertex(vid)
		lt.vertices[vid] = v
		lt.footprint += v.FootprintBytes()
	}
	// The vertex table is a hash table in the original system, so the task
	// generator's scan order carries no ID locality; replicate that with a
	// deterministic hash-shuffle. (Consecutive IDs in synthetic graphs
	// share neighborhoods, which would otherwise gift the non-LSH queue an
	// unrealistically good access pattern.)
	sort.Slice(lt.ids, func(i, j int) bool {
		return lsh.HashID(uint64(lt.ids[i])) < lsh.HashID(uint64(lt.ids[j]))
	})
	return lt
}

// newWorker builds worker `id` over the shared frozen graph. local, if
// non-nil, is a prebuilt partition view (warm sessions); restore, if
// non-nil, is a checkpoint snapshot to resume from.
func newWorker(id int, cfg Config, algo core.Algorithm, g *graph.Graph,
	assign *partition.Assignment, local *localTable, ep transport.Endpoint,
	counters *metrics.Counters, snapshots *snapshotSink, restore *workerSnapshot) (*Worker, error) {

	w := &Worker{
		id:         id,
		cfg:        cfg,
		algo:       algo,
		ep:         ep,
		assign:     assign,
		counters:   counters,
		stopCh:     make(chan struct{}),
		masterNode: cfg.Workers,
		pulls:      make(map[graph.VertexID]*pullState),
		pullBatch:  make(map[int][]graph.VertexID),
		retryRng:   rand.New(rand.NewSource(0xfa17 + int64(id))),
		snapshots:  snapshots,
	}
	w.pendCond = sync.NewCond(&w.pendMu)
	w.trSeed = cfg.Tracer.Handle(id, trace.CompSeeder)
	w.trRetr = cfg.Tracer.Handle(id, trace.CompRetriever)
	w.trExec = cfg.Tracer.Handle(id, trace.CompExecutor)
	w.trSteal = cfg.Tracer.Handle(id, trace.CompSteal)
	w.trCkpt = cfg.Tracer.Handle(id, trace.CompCheckpoint)
	w.stealPolicy = cfg.StealPolicy
	if w.stealPolicy == nil {
		w.stealPolicy = CostPolicy{Tc: cfg.StealCostMax, Tr: cfg.StealLocalityMax}
	}
	if ap, ok := algo.(core.AggregatorProvider); ok {
		w.agg = ap.Aggregator()
		w.aggPartial = w.agg.Zero()
		w.aggGlobal = w.agg.Zero()
	}

	// Load the local partition: the graph loader + vertex table of Fig. 4.
	// Warm sessions prebuild the table once and share it across jobs.
	if local == nil {
		local = buildLocalTable(g, assign, id)
	}
	w.local = local.vertices
	w.localIDs = local.ids
	w.graphFoot = local.footprint

	spillDir := cfg.SpillDir
	if spillDir != "" {
		// The JobID segment keeps concurrent jobs' spill files apart; it is
		// empty (a no-op path segment) in single-shot mode.
		spillDir = filepath.Join(spillDir, cfg.JobID, fmt.Sprintf("worker-%d", id))
	}
	sp, err := spill.New(spillDir, counters)
	if err != nil {
		return nil, err
	}
	w.spiller = sp
	sp.SetTrace(cfg.Tracer.Handle(id, trace.CompSpill))
	lshDims := 0
	if cfg.UseLSH {
		lshDims = cfg.LSHDims
	}
	w.store = store.New(store.Config{
		MemCapacity:   cfg.StoreMemCapacity,
		BlockCapacity: cfg.StoreBlockCapacity,
		LSHDims:       lshDims,
		Seed:          0x5eed + uint64(id),
	}, algo, sp, counters)
	w.cache = cache.NewSharded(cfg.CacheCapacity, cfg.CacheShards, counters)
	w.cache.SetTrace(cfg.Tracer.Handle(id, trace.CompCache))
	w.cpq = newTaskQueue()
	w.buffer = newTaskBuffer(cfg.BufferFlush)

	// Task IDs: high byte is the origin worker for global uniqueness.
	w.nextTaskID.Store(uint64(id) << 48)

	if restore != nil {
		if err := w.applySnapshot(restore); err != nil {
			// Nothing was mutated (the snapshot decodes before any intake);
			// release the resources this half-built worker holds so the
			// caller can retry with an older epoch or a fresh worker.
			w.stop()
			w.spiller.Close()
			return nil, err
		}
	}
	return w, nil
}

// start launches the pipeline goroutines.
func (w *Worker) start() {
	loops := []func(){w.commLoop, w.retrieverLoop, w.seederLoop, w.progressLoop}
	for i := 0; i < w.cfg.Threads; i++ {
		loops = append(loops, w.executorLoop)
	}
	if w.cfg.PullServeWorkers > 1 {
		w.pullServe = make(chan pullWork, 4*w.cfg.PullServeWorkers)
		for i := 0; i < w.cfg.PullServeWorkers; i++ {
			loops = append(loops, w.pullServeLoop)
		}
	}
	w.wg.Add(len(loops))
	for _, loop := range loops {
		go func(f func()) {
			defer w.wg.Done()
			f()
		}(loop)
	}
}

// stop shuts the pipeline down (idempotent).
func (w *Worker) stop() {
	w.stopOnce.Do(func() {
		close(w.stopCh)
		w.store.Close()
		w.cpq.close()
		w.cache.Close()
		w.pendMu.Lock()
		w.pendCond.Broadcast()
		w.pendMu.Unlock()
	})
}

// kill simulates a machine crash: all loops exit without flushing or
// notifying anyone, and all state is abandoned.
func (w *Worker) kill() {
	w.killed.Store(true)
	w.stop()
}

func (w *Worker) stopped() bool {
	select {
	case <-w.stopCh:
		return true
	default:
		return false
	}
}

// assignID gives a task a globally unique ID.
func (w *Worker) assignID(t *core.Task) {
	t.ID = w.nextTaskID.Add(1)
}

// intake admits a task into the pipeline: computes its to_pull set and
// buffers it toward the task store. migrated marks tasks received via
// task stealing.
func (w *Worker) intake(t *core.Task, migrated bool) {
	w.inflight.Add(1)
	w.activity.Add(1)
	if migrated {
		w.tasksRecv.Add(1)
	}
	w.computeToPull(t)
	if batch := w.buffer.add(t); batch != nil {
		w.flushBatch(batch)
	}
}

func (w *Worker) flushBatch(batch []*core.Task) {
	if len(batch) == 0 {
		return
	}
	if err := w.store.Insert(batch); err != nil {
		// Store closed: the job is shutting down; drop silently.
		return
	}
}

// computeToPull fills t.ToPull with the deduplicated candidates that are
// not in the local partition. Candidates owned by nobody (dangling IDs)
// are excluded — they resolve to nil at update time.
func (w *Worker) computeToPull(t *core.Task) {
	t.ToPull = t.ToPull[:0]
	seen := make(map[graph.VertexID]struct{}, len(t.Cands))
	for _, id := range t.Cands {
		if _, ok := w.local[id]; ok {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if w.assign.Owner(id) < 0 {
			continue
		}
		t.ToPull = append(t.ToPull, id)
	}
}

// ---------------------------------------------------------------------------
// Seeder: the task generator of Figure 4, streaming seeds into the pipeline.

func (w *Worker) seederLoop() {
	spawn := func(t *core.Task) {
		w.assignID(t)
		w.trSeed.Event(trace.EvTaskSeed, t.ID)
		w.intake(t, false)
	}
	for i := int(w.seedCursor.Load()); i < len(w.localIDs); i++ {
		if w.stopped() {
			return
		}
		for w.paused.Load() {
			time.Sleep(200 * time.Microsecond)
			if w.stopped() {
				return
			}
		}
		if !w.cfg.EagerSeeding {
			// Streaming seeding (extension, §9): backpressure against the
			// task store so seeds do not all materialize up front.
			for w.store.Size() > 2*w.cfg.StoreMemCapacity {
				time.Sleep(time.Millisecond)
				if w.stopped() {
					return
				}
			}
		}
		w.algo.Seed(w.local[w.localIDs[i]], spawn)
		w.seedCursor.Store(int64(i + 1))
	}
	w.seedsDone.Store(true)
}

// ---------------------------------------------------------------------------
// Candidate retriever (Figure 2): dequeues inactive tasks from the task
// store, satisfies candidates from the RCV cache, and issues pull requests
// for the rest; tasks whose pulls are all satisfied go to the CPQ.

func (w *Worker) retrieverLoop() {
	for {
		if w.stopped() {
			return
		}
		if w.paused.Load() {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		// Backpressure: bound ready tasks and in-flight pull tasks so the
		// references they hold cannot overflow the cache without bound.
		w.flushPulls()
		w.cpq.waitBelow(w.cfg.CPQHighWater)
		w.waitPendingBelow(w.cfg.MaxPendingPulls)
		t, ok := w.store.TryPop()
		if !ok {
			// Nothing to dispatch: push out whatever requests are queued
			// before going idle.
			w.flushPulls()
			time.Sleep(200 * time.Microsecond)
			continue
		}
		w.dispatch(t)
	}
}

func (w *Worker) waitPendingBelow(n int) {
	w.pendMu.Lock()
	for w.pendingTasks >= n && !w.stopped() {
		w.pendCond.Wait()
	}
	w.pendMu.Unlock()
}

// dispatch resolves one task's remote candidates against the cache and
// either readies it or parks it in the CMQ behind batched pull requests.
func (w *Worker) dispatch(t *core.Task) {
	if len(t.ToPull) == 0 {
		t.SetStatus(core.StatusReady)
		w.trRetr.Event(trace.EvTaskReady, t.ID)
		w.cpq.push(t)
		return
	}
	pt := &pendingTask{t: t}
	w.pendMu.Lock()
	for _, id := range t.ToPull {
		if _, ok := w.cache.Acquire(id); ok {
			continue // reference held until the round completes
		}
		pt.remaining++
		ps, inFlight := w.pulls[id]
		if !inFlight {
			owner := w.assign.Owner(id)
			now := time.Now()
			ps = &pullState{requestedAt: now, retryAt: now.Add(w.retryDelay(0)), owner: owner}
			w.pulls[id] = ps
			w.pullBatch[owner] = append(w.pullBatch[owner], id)
			w.pullCount++
		}
		ps.waiters = append(ps.waiters, pt)
	}
	if pt.remaining == 0 {
		w.pendMu.Unlock()
		t.SetStatus(core.StatusReady)
		w.trRetr.Event(trace.EvTaskReady, t.ID)
		w.cpq.push(t)
		return
	}
	w.pendingTasks++
	flush := w.pullCount >= w.cfg.BufferFlush
	// pt is visible to handlePullResp once pendMu drops; read remaining now.
	parked := pt.remaining
	w.pendMu.Unlock()
	w.trRetr.Event(trace.EvCMQBatch, uint64(parked))
	if flush {
		w.flushPulls()
	}
}

// flushPulls sends the accumulated per-destination pull requests. The
// batch map and its per-owner slices are recycled between flushes (the
// owner set is bounded by the cluster size, so retained keys with
// truncated slices cost nothing), and requests are encoded into pooled
// buffers — steady-state flushing is allocation-free.
func (w *Worker) flushPulls() {
	w.pendMu.Lock()
	if w.pullCount == 0 {
		w.pendMu.Unlock()
		return
	}
	batch := w.pullBatch
	if w.pullSpare != nil {
		w.pullBatch = w.pullSpare
		w.pullSpare = nil
	} else {
		w.pullBatch = make(map[int][]graph.VertexID, len(batch))
	}
	w.pullCount = 0
	w.pendMu.Unlock()
	for owner, ids := range batch {
		if len(ids) == 0 {
			continue // recycled key from an earlier flush
		}
		w.trRetr.Event(trace.EvPullIssued, uint64(len(ids)))
		wr := wire.GetWriter(16 + 4*len(ids))
		encodePullReqInto(wr, ids)
		_ = w.ep.Send(owner, msgPullReq, wr.Bytes())
		wire.PutWriter(wr)
		batch[owner] = ids[:0]
	}
	w.pendMu.Lock()
	if w.pullSpare == nil {
		w.pullSpare = batch
	}
	w.pendMu.Unlock()
}

// handlePullResp resolves arrived vertices against CMQ waiters.
func (w *Worker) handlePullResp(payload []byte) {
	entries, err := decodePullResp(payload)
	if err != nil {
		return
	}
	var ready []*core.Task
	var now time.Time
	if w.trRetr.Active() {
		now = time.Now()
	}
	w.pendMu.Lock()
	for _, pv := range entries {
		ps, ok := w.pulls[pv.ID]
		if !ok || len(ps.waiters) == 0 {
			continue // duplicate response (e.g. a retry raced the original)
		}
		if !now.IsZero() {
			w.trRetr.Observe(trace.MetricPullRTT, now.Sub(ps.requestedAt))
		}
		delete(w.pulls, pv.ID)
		if pv.Present {
			// First waiter's reference comes from the insert; each
			// additional waiter acquires its own.
			if !w.cache.TryInsert(pv.V) {
				w.cache.ForceInsert(pv.V)
			}
			for range ps.waiters[1:] {
				w.cache.Acquire(pv.ID)
			}
		}
		for _, pt := range ps.waiters {
			pt.remaining--
			if pt.remaining == 0 {
				w.pendingTasks--
				ready = append(ready, pt.t)
			}
		}
	}
	w.pendCond.Broadcast()
	w.pendMu.Unlock()
	w.trRetr.Event(trace.EvPullAnswered, uint64(len(entries)))
	for _, t := range ready {
		t.SetStatus(core.StatusReady)
		w.trRetr.Event(trace.EvTaskReady, t.ID)
		w.cpq.push(t)
	}
}

// retryDelay is the wait before retry number `attempts` of a pull:
// exponential from PullRetryBase, capped at PullRetryMax, with ±25%
// jitter so a lost batch does not retry as one synchronized burst.
// Caller holds pendMu (the RNG is not otherwise synchronized).
func (w *Worker) retryDelay(attempts int) time.Duration {
	d := w.cfg.PullRetryBase
	for i := 0; i < attempts && d < w.cfg.PullRetryMax; i++ {
		d *= 2
	}
	if d > w.cfg.PullRetryMax {
		d = w.cfg.PullRetryMax
	}
	if half := int64(d) / 2; half > 0 {
		d = d*3/4 + time.Duration(w.retryRng.Int63n(half))
	}
	return d
}

// retryStalePulls re-issues pull requests whose responses are overdue
// (request or response lost to a crashed worker or a lossy network).
// Each retry re-resolves the vertex owner instead of trusting the
// snapshot taken at request time: after a failure + recovery the owner
// assignment is re-read, so a stale snapshot could target the wrong
// node forever. Retries back off exponentially with jitter (capped) so
// a dead owner is probed, not hammered.
func (w *Worker) retryStalePulls() {
	now := time.Now()
	need := make(map[int][]graph.VertexID)
	w.pendMu.Lock()
	for id, ps := range w.pulls {
		if now.Before(ps.retryAt) {
			continue
		}
		ps.attempts++
		if owner := w.assign.Owner(id); owner >= 0 {
			ps.owner = owner
		}
		ps.requestedAt = now
		ps.retryAt = now.Add(w.retryDelay(ps.attempts))
		need[ps.owner] = append(need[ps.owner], id)
	}
	w.pendMu.Unlock()
	for owner, ids := range need {
		w.trRetr.Event(trace.EvPullRetry, uint64(len(ids)))
		wr := wire.GetWriter(16 + 4*len(ids))
		encodePullReqInto(wr, ids)
		_ = w.ep.Send(owner, msgPullReq, wr.Bytes())
		wire.PutWriter(wr)
	}
}

// ---------------------------------------------------------------------------
// Task executor (Figure 2): a pool of computing threads running update
// rounds on ready tasks.

func (w *Worker) executorLoop() {
	for {
		t, ok := w.cpq.pop()
		if !ok {
			return
		}
		if w.stopped() {
			// Cancellation drain: the queue is closed and being emptied;
			// drop remaining ready tasks instead of running more rounds.
			// (On a clean termination the queue is empty by construction,
			// so this branch only fires on cancel/kill.)
			continue
		}
		w.runTask(t)
	}
}

// runTask executes update rounds until the task dies or needs remote
// candidates. A task whose next-round candidates are all local "directly
// enters the next round of update without any status change" (§4.2).
func (w *Worker) runTask(t *core.Task) {
	for {
		t.SetStatus(core.StatusActive)
		if t.Round == 0 {
			t.Round = 1 // first update round after seeding (§4.2)
		}
		start := time.Now()
		cands := w.resolve(t.Cands)
		w.algo.Update(t, cands, w)
		w.counters.AddBusy(time.Since(start))
		// Reuses the busy-time timestamps: a disabled tracer adds no clock
		// reads to the round loop.
		w.trExec.ObserveSpan(trace.MetricTaskRound, trace.EvTaskActive, start, t.ID)

		next, children := t.TakeTransition()
		if len(t.ToPull) > 0 {
			w.cache.Release(t.ToPull...)
			t.ToPull = t.ToPull[:0]
		}
		if len(children) > 0 {
			w.trExec.Event(trace.EvTaskSplit, uint64(len(children)))
		}
		for _, c := range children {
			w.assignID(c)
			c.SetStatus(core.StatusInactive)
			w.intake(c, false)
		}
		if next == nil {
			t.SetStatus(core.StatusDead)
			w.taskDead(t)
			return
		}
		t.Advance(next)
		w.computeToPull(t)
		if len(t.ToPull) > 0 {
			t.SetStatus(core.StatusInactive)
			w.trExec.Event(trace.EvTaskInactive, t.ID)
			if batch := w.buffer.add(t); batch != nil {
				w.flushBatch(batch)
			}
			return
		}
		if w.stopped() {
			return
		}
	}
}

func (w *Worker) taskDead(t *core.Task) {
	w.inflight.Add(-1)
	w.activity.Add(1)
	w.counters.TaskDone()
	w.trExec.Event(trace.EvTaskDead, t.ID)
	if obs, ok := w.stealPolicy.(TaskObserver); ok {
		obs.ObserveCompleted(t.CostC())
	}
}

// resolve maps candidate IDs to vertex objects: local partition first,
// then the RCV cache; unknown IDs yield nil.
func (w *Worker) resolve(ids []graph.VertexID) []*graph.Vertex {
	out := make([]*graph.Vertex, len(ids))
	for i, id := range ids {
		if v, ok := w.local[id]; ok {
			out[i] = v
			continue
		}
		if v, ok := w.cache.Peek(id); ok {
			out[i] = v
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Communication loop: the request listener of Figure 4 plus all control
// message handling.

func (w *Worker) commLoop() {
	for {
		m, ok := w.ep.Recv()
		if !ok || w.killed.Load() {
			return
		}
		switch m.Type {
		case msgPullReq:
			if w.pullServe != nil {
				select {
				case w.pullServe <- pullWork{from: m.From, payload: m.Payload}:
				case <-w.stopCh:
					return
				}
			} else {
				w.servePull(m.From, m.Payload)
			}
		case msgPullResp:
			w.handlePullResp(m.Payload)
		case msgMigrate:
			w.handleMigrate(m.Payload)
		case msgTasks:
			w.handleTasks(m.Payload)
		case msgNoTask:
			w.trSteal.Event(trace.EvStealNoTask, 0)
			w.lastStealReq.Store(0)
			w.stealBackoff.Store(8)
		case msgAggGlobal:
			w.handleAggGlobal(m.Payload)
		case msgCheckpointReq:
			if epoch, err := decodeEpoch(m.Payload); err == nil {
				// Tracked in wg so job teardown can prove no checkpoint
				// goroutine outlives the job (leak-checked reruns).
				w.wg.Add(1)
				go func() {
					defer w.wg.Done()
					w.checkpoint(epoch)
				}()
			}
		case msgStop:
			w.stop()
			return
		}
	}
}

// pullServeLoop drains the pull-serve queue; several of these run per
// worker so responses to different requesters are encoded and sent
// concurrently.
func (w *Worker) pullServeLoop() {
	for {
		select {
		case <-w.stopCh:
			return
		case req := <-w.pullServe:
			w.servePull(req.from, req.payload)
		}
	}
}

// servePull answers a pull request from another worker with the requested
// vertices from the local vertex table. The response is encoded into a
// pooled buffer: Send copies the payload, so the buffer goes straight
// back to the pool.
func (w *Worker) servePull(from int, payload []byte) {
	ids, err := decodePullReq(payload)
	if err != nil {
		return
	}
	found := make([]*graph.Vertex, 0, len(ids))
	var missing []graph.VertexID
	for _, id := range ids {
		if v, ok := w.local[id]; ok {
			found = append(found, v)
		} else {
			missing = append(missing, id)
		}
	}
	wr := wire.GetWriter(64 + 32*len(ids))
	encodePullRespInto(wr, found, missing)
	_ = w.ep.Send(from, msgPullResp, wr.Bytes())
	wire.PutWriter(wr)
}

// handleMigrate serves a MIGRATE order from the master: steal up to Tnum
// eligible tasks from the task store and ship them to the thief.
func (w *Worker) handleMigrate(payload []byte) {
	thief, tnum, err := decodeMigrate(payload)
	if err != nil {
		return
	}
	tasks := w.store.Steal(tnum, w.stealPolicy.Eligible)
	if len(tasks) == 0 {
		w.trSteal.Event(trace.EvStealNoTask, 0)
		_ = w.ep.Send(thief, msgNoTask, nil)
		return
	}
	w.trSteal.Event(trace.EvStealMigrate, uint64(len(tasks)))
	wr := wire.GetWriter(256 * len(tasks))
	encodeTasksInto(wr, tasks, w.algo)
	w.inflight.Add(-int64(len(tasks)))
	w.activity.Add(int64(len(tasks)))
	w.tasksSent.Add(int64(len(tasks)))
	for range tasks {
		w.counters.TaskStolen()
	}
	_ = w.ep.Send(thief, msgTasks, wr.Bytes())
	wire.PutWriter(wr)
}

// handleTasks admits a migration batch.
func (w *Worker) handleTasks(payload []byte) {
	tasks, err := decodeTasks(payload, w.algo)
	if err != nil {
		return
	}
	if at := w.lastStealReq.Swap(0); at != 0 && w.trSteal.Active() {
		w.trSteal.Observe(trace.MetricMigration, time.Duration(time.Now().UnixNano()-at))
	}
	for _, t := range tasks {
		w.intake(t, true)
	}
}

func (w *Worker) handleAggGlobal(payload []byte) {
	if w.agg == nil {
		return
	}
	r := wire.NewReader(payload)
	v := w.agg.Decode(r)
	w.aggMu.Lock()
	w.aggGlobal = v
	w.aggMu.Unlock()
}

// ---------------------------------------------------------------------------
// Progress reporting, idle detection and steal requests.

func (w *Worker) progressLoop() {
	ticker := time.NewTicker(w.cfg.ProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-ticker.C:
		}
		// Flush tasks and pull requests stranded below batch thresholds.
		w.flushBatch(w.buffer.drain())
		w.flushPulls()
		w.retryStalePulls()
		w.observeMemory()

		rep := &progressReport{
			Worker:    w.id,
			Inflight:  w.inflight.Load(),
			StoreSize: int64(w.store.Size()),
			TasksSent: w.tasksSent.Load(),
			TasksRecv: w.tasksRecv.Load(),
			Activity:  w.activity.Load(),
			SeedsDone: w.seedsDone.Load(),
			Results:   int64(w.resultCount()),
		}
		var aggW *wire.Writer
		if w.agg != nil {
			aggW = wire.GetWriter(32)
			w.aggMu.Lock()
			w.agg.Encode(aggW, w.aggPartial)
			w.aggMu.Unlock()
			rep.AggSet = true
			rep.AggBytes = aggW.Bytes()
		}
		pw := wire.GetWriter(64 + len(rep.AggBytes))
		encodeProgressInto(pw, rep)
		_ = w.ep.Send(w.masterNode, msgProgress, pw.Bytes())
		wire.PutWriter(pw)
		if aggW != nil {
			wire.PutWriter(aggW)
		}

		if w.cfg.Stealing && w.seedsDone.Load() && w.inflight.Load() == 0 {
			if w.stealBackoff.Load() > 0 {
				w.stealBackoff.Add(-1)
			} else {
				if w.trSteal.Active() {
					w.trSteal.Event(trace.EvStealReq, 0)
					w.lastStealReq.CompareAndSwap(0, time.Now().UnixNano())
				}
				_ = w.ep.Send(w.masterNode, msgStealReq, nil)
			}
		}
	}
}

// observeMemory refreshes this worker's live-memory estimate: graph
// partition + in-memory task store + RCV cache. Job-owned bytes (store +
// cache, not the shared resident graph) are also charged against the job's
// memory budget when one is set; overflowing it aborts the job instead of
// letting it starve co-resident jobs.
func (w *Worker) observeMemory() {
	owned := w.store.MemBytes() + w.cache.Bytes()
	w.counters.ObserveLive(w.graphFoot + owned)
	if w.cfg.MemBudget == nil {
		return
	}
	delta := owned - w.budgetCharged
	w.budgetCharged = owned
	if delta < 0 {
		w.cfg.MemBudget.Release(-delta)
		return
	}
	if err := w.cfg.MemBudget.Charge(delta); err != nil && w.oomFn != nil {
		w.oomFn(fmt.Errorf("worker %d: %w", w.id, err))
	}
}

func (w *Worker) resultCount() int {
	w.resMu.Lock()
	defer w.resMu.Unlock()
	return len(w.results)
}

// takeResults returns the output records (job collection).
func (w *Worker) takeResults() []string {
	w.resMu.Lock()
	defer w.resMu.Unlock()
	return append([]string(nil), w.results...)
}

// aggPartialValue returns the worker's current aggregator partial.
func (w *Worker) aggPartialValue() any {
	w.aggMu.Lock()
	defer w.aggMu.Unlock()
	return w.aggPartial
}

// ---------------------------------------------------------------------------
// core.Env implementation (what Seed/Update can reach).

// WorkerID implements core.Env.
func (w *Worker) WorkerID() int { return w.id }

// NumWorkers implements core.Env.
func (w *Worker) NumWorkers() int { return w.cfg.Workers }

// Emit implements core.Env.
func (w *Worker) Emit(record string) {
	w.resMu.Lock()
	w.results = append(w.results, record)
	w.resMu.Unlock()
	w.counters.EmitResult()
}

// AggUpdate implements core.Env.
func (w *Worker) AggUpdate(v any) {
	if w.agg == nil {
		return
	}
	w.aggMu.Lock()
	w.aggPartial = w.agg.Add(w.aggPartial, v)
	w.aggMu.Unlock()
}

// AggGlobal implements core.Env.
func (w *Worker) AggGlobal() any {
	if w.agg == nil {
		return nil
	}
	w.aggMu.Lock()
	defer w.aggMu.Unlock()
	// The freshest view a worker has is its own partial merged with the
	// last broadcast global.
	return w.agg.Merge(w.aggGlobal, w.aggPartial)
}

// LocalVertex implements core.Env.
func (w *Worker) LocalVertex(id graph.VertexID) *graph.Vertex {
	return w.local[id]
}
