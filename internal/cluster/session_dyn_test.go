package cluster

import (
	"reflect"
	"sync"
	"testing"

	"gminer/internal/algo"
	"gminer/internal/core"
	"gminer/internal/dyngraph"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

func dynConfig(workers int) Config {
	return Config{
		Workers:     workers,
		Threads:     2,
		Dynamic:     true,
		Partitioner: partition.Blocked{Shift: 4},
	}
}

// sameLocalTable compares two worker partition views byte for byte: same
// scan order, same footprint, same vertex set with identical adjacency
// and annotations.
func sameLocalTable(t *testing.T, w int, a, b *localTable) {
	t.Helper()
	if !reflect.DeepEqual(a.ids, b.ids) {
		t.Fatalf("worker %d: scan order diverged (%d vs %d ids)", w, len(a.ids), len(b.ids))
	}
	if a.footprint != b.footprint {
		t.Fatalf("worker %d: footprint %d != %d", w, a.footprint, b.footprint)
	}
	if len(a.vertices) != len(b.vertices) {
		t.Fatalf("worker %d: table size %d != %d", w, len(a.vertices), len(b.vertices))
	}
	for id, va := range a.vertices {
		vb, ok := b.vertices[id]
		if !ok {
			t.Fatalf("worker %d: vertex %d missing from fresh table", w, id)
		}
		if !reflect.DeepEqual(va.Adj, vb.Adj) || va.Label != vb.Label || !reflect.DeepEqual(va.Attrs, vb.Attrs) {
			t.Fatalf("worker %d: vertex %d contents diverged", w, id)
		}
	}
}

// TestDynamicSessionMatchesFreshPrepare is the warm-session half of the
// incremental-repartitioning differential gate: after each mutation
// batch, the warm session's incrementally migrated assignment and local
// tables must be byte-identical to a from-scratch NewSession over a
// replayed graph — and jobs served from the warm session must return the
// byte-identical results.
func TestDynamicSessionMatchesFreshPrepare(t *testing.T) {
	const workers = 3
	build := func() *graph.Graph { return gen.ErdosRenyi(400, 1600, 21) }

	g := build()
	s, err := NewSession(g, dynConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batches := gen.Deltas(g, gen.DeltasConfig{Batches: 3, Ops: 40, Seed: 13})
	for bi, b := range batches {
		epr, err := s.ApplyMutations(b)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if epr.Epoch != int64(bi+1) {
			t.Fatalf("batch %d: epoch %d, want %d", bi, epr.Epoch, bi+1)
		}

		replay := build()
		for _, pb := range batches[:bi+1] {
			dyngraph.ApplyToGraph(replay, pb)
		}
		fresh, err := NewSession(replay, dynConfig(workers))
		if err != nil {
			t.Fatalf("batch %d: fresh session: %v", bi, err)
		}

		g.ForEach(func(v *graph.Vertex) bool {
			if s.assign.Owner(v.ID) != fresh.assign.Owner(v.ID) {
				t.Fatalf("batch %d: owner of %d diverged", bi, v.ID)
			}
			return true
		})
		for w := 0; w < workers; w++ {
			sameLocalTable(t, w, s.locals[w], fresh.locals[w])
		}

		// Served results across the epoch boundary: warm == from-scratch.
		warmTC, err := runOn(s, algo.NewTriangleCount())
		if err != nil {
			t.Fatalf("batch %d: warm tc: %v", bi, err)
		}
		freshTC, err := runOn(fresh, algo.NewTriangleCount())
		if err != nil {
			t.Fatalf("batch %d: fresh tc: %v", bi, err)
		}
		if !reflect.DeepEqual(warmTC.AggGlobal, freshTC.AggGlobal) {
			t.Fatalf("batch %d: tc aggregate %v != %v", bi, warmTC.AggGlobal, freshTC.AggGlobal)
		}
		warmQC, err := runOn(s, algo.NewQuasiClique(0.8, 3))
		if err != nil {
			t.Fatalf("batch %d: warm qc: %v", bi, err)
		}
		freshQC, err := runOn(fresh, algo.NewQuasiClique(0.8, 3))
		if err != nil {
			t.Fatalf("batch %d: fresh qc: %v", bi, err)
		}
		if !reflect.DeepEqual(warmQC.Records, freshQC.Records) {
			t.Fatalf("batch %d: qc records diverged (%d vs %d)", bi, len(warmQC.Records), len(freshQC.Records))
		}
		fresh.Close()
	}
}

func runOn(s *Session, a core.Algorithm) (*Result, error) {
	j, err := s.Launch(a, JobOptions{})
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

func TestDynamicSessionEpochSemantics(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 3)
	s, err := NewSession(g, dynConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fp0 := s.Fingerprint()
	if s.GraphEpoch() != 0 || !s.Dynamic() {
		t.Fatalf("fresh dynamic session: epoch %d dynamic %v", s.GraphEpoch(), s.Dynamic())
	}
	epr, err := s.ApplyMutations(dyngraph.Batch{Ops: []dyngraph.Mutation{{Op: dyngraph.OpAddEdge, U: 1, W: 50}}})
	if err != nil {
		t.Fatal(err)
	}
	if epr.Epoch != 1 || s.GraphEpoch() != 1 {
		t.Fatalf("epoch after one batch: %d / %d", epr.Epoch, s.GraphEpoch())
	}
	if s.Fingerprint() == fp0 {
		t.Fatal("fingerprint did not change with the graph epoch")
	}

	// Static sessions refuse mutations.
	g2 := gen.ErdosRenyi(50, 100, 1)
	static, err := NewSession(g2, Config{Workers: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()
	if static.Dynamic() {
		t.Fatal("static session claims to be dynamic")
	}
	if _, err := static.ApplyMutations(dyngraph.Batch{Ops: []dyngraph.Mutation{{Op: dyngraph.OpDelEdge, U: 0, W: 1}}}); err == nil {
		t.Fatal("static session accepted a mutation batch")
	}

	// Dynamic sessions require the blocked partitioner.
	if _, err := NewSession(g2, Config{Workers: 2, Threads: 1, Dynamic: true}); err == nil {
		t.Fatal("dynamic session accepted the default (non-decomposable) partitioner")
	}
}

// TestDynamicSessionConcurrentJobsAndMutations races job launches against
// mutation batches: every job must observe a whole epoch (no torn reads —
// this test is what -race patrols), and the final state must equal a
// replayed from-scratch prepare.
func TestDynamicSessionConcurrentJobsAndMutations(t *testing.T) {
	build := func() *graph.Graph { return gen.ErdosRenyi(300, 900, 5) }
	g := build()
	s, err := NewSession(g, dynConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batches := gen.Deltas(g, gen.DeltasConfig{Batches: 3, Ops: 16, Seed: 2})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			j, err := s.Launch(algo.NewTriangleCount(), JobOptions{})
			if err != nil {
				t.Errorf("launch: %v", err)
				return
			}
			if _, err := j.Wait(); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for bi, b := range batches {
			if _, err := s.ApplyMutations(b); err != nil {
				t.Errorf("batch %d: %v", bi, err)
				return
			}
		}
	}()
	wg.Wait()
	if s.GraphEpoch() != int64(len(batches)) {
		t.Fatalf("final epoch %d, want %d", s.GraphEpoch(), len(batches))
	}

	replay := build()
	for _, b := range batches {
		dyngraph.ApplyToGraph(replay, b)
	}
	fresh, err := NewSession(replay, dynConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	warm, err := runOn(s, algo.NewTriangleCount())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := runOn(fresh, algo.NewTriangleCount())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.AggGlobal, ref.AggGlobal) {
		t.Fatalf("post-churn tc aggregate %v != fresh %v", warm.AggGlobal, ref.AggGlobal)
	}
}
