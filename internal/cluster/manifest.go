package cluster

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"gminer/internal/graph"
	"gminer/internal/wire"
)

// Durable checkpoint format (§7 hardening). A worker's snapshot is framed
// on disk as
//
//	"GMCK1" | uvarint payload length | payload | crc32c(payload), LE
//
// so a torn write (crash mid-checkpoint, disk rot) is detected before the
// payload ever reaches decodeSnapshot. The master's MANIFEST uses the same
// frame with its own magic and records which epoch is committed: an epoch
// exists durably only once every worker's file landed (fsync'd) and the
// master wrote the manifest naming it. Restore never trusts a file the
// manifest does not vouch for.

const (
	snapshotMagic = "GMCK1"
	manifestMagic = "GMMF1"
	// manifestName is the committed-epoch record inside the checkpoint
	// directory.
	manifestName = "MANIFEST"
	// noEpoch marks "no committed epoch" in manifest fields.
	noEpoch = int64(-1)
)

// castagnoli is the CRC32C polynomial (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// frame wraps payload in magic | length | payload | crc32c.
func frame(magic string, payload []byte) []byte {
	b := make([]byte, 0, len(magic)+10+len(payload)+4)
	b = append(b, magic...)
	w := wire.NewWriter(10)
	w.Uvarint(uint64(len(payload)))
	b = append(b, w.Bytes()...)
	b = append(b, payload...)
	crc := checksum(payload)
	return append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// unframe validates magic, length and checksum and returns the payload and
// its CRC32C. Any truncation, trailing garbage or checksum mismatch is an
// error — the caller falls back to an older epoch instead of decoding
// garbage.
func unframe(magic string, b []byte) ([]byte, uint32, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("checkpoint: bad magic (want %s)", magic)
	}
	r := wire.NewReader(b[len(magic):])
	n := r.Uvarint()
	if r.Err() != nil || uint64(r.Remaining()) < n+4 {
		return nil, 0, fmt.Errorf("checkpoint: truncated frame")
	}
	start := len(b) - r.Remaining()
	payload := b[start : start+int(n)]
	tail := b[start+int(n):]
	if len(tail) != 4 {
		return nil, 0, fmt.Errorf("checkpoint: %d trailing bytes after frame", len(tail)-4)
	}
	crc := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if got := checksum(payload); got != crc {
		return nil, 0, fmt.Errorf("checkpoint: checksum mismatch (stored %08x, computed %08x)", crc, got)
	}
	return payload, crc, nil
}

// manifest is the master's committed-epoch record: the newest epoch whose
// every worker file is durable, the previous committed epoch retained as
// the fallback, and the per-worker payload checksums of both (restore
// cross-checks the file CRC against the manifest, so a stale file from an
// abandoned epoch cannot impersonate a committed one).
type manifest struct {
	// Fingerprint identifies the job: graph structure, algorithm, worker
	// count and partitioner. Resume refuses a manifest whose fingerprint
	// does not match the job being launched.
	Fingerprint uint64
	Workers     int
	Epoch       int64
	EpochCRCs   []uint32
	PrevEpoch   int64 // noEpoch when only one epoch has ever committed
	PrevCRCs    []uint32
}

// epochs returns the committed epochs newest-first.
func (m *manifest) epochs() []int64 {
	if m == nil {
		return nil
	}
	out := []int64{m.Epoch}
	if m.PrevEpoch != noEpoch {
		out = append(out, m.PrevEpoch)
	}
	return out
}

// crcsFor returns the per-worker checksums of a committed epoch, or nil if
// the manifest does not vouch for that epoch.
func (m *manifest) crcsFor(epoch int64) []uint32 {
	switch {
	case m == nil:
		return nil
	case epoch == m.Epoch:
		return m.EpochCRCs
	case epoch == m.PrevEpoch:
		return m.PrevCRCs
	}
	return nil
}

func encodeManifest(m *manifest) []byte {
	w := wire.NewWriter(64 + 8*len(m.EpochCRCs))
	w.Uvarint(m.Fingerprint)
	w.Int(m.Workers)
	w.Varint(m.Epoch)
	w.Uvarint(uint64(len(m.EpochCRCs)))
	for _, c := range m.EpochCRCs {
		w.Uvarint(uint64(c))
	}
	w.Varint(m.PrevEpoch)
	w.Uvarint(uint64(len(m.PrevCRCs)))
	for _, c := range m.PrevCRCs {
		w.Uvarint(uint64(c))
	}
	return frame(manifestMagic, w.Bytes())
}

func decodeManifest(b []byte) (*manifest, error) {
	payload, _, err := unframe(manifestMagic, b)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	m := &manifest{}
	m.Fingerprint = r.Uvarint()
	m.Workers = r.Int()
	m.Epoch = r.Varint()
	n := r.Count(1)
	m.EpochCRCs = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		m.EpochCRCs = append(m.EpochCRCs, uint32(r.Uvarint()))
	}
	m.PrevEpoch = r.Varint()
	n = r.Count(1)
	m.PrevCRCs = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		m.PrevCRCs = append(m.PrevCRCs, uint32(r.Uvarint()))
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing manifest bytes", r.Remaining())
	}
	if m.Workers <= 0 || len(m.EpochCRCs) != m.Workers {
		return nil, fmt.Errorf("checkpoint: manifest names %d workers, carries %d checksums",
			m.Workers, len(m.EpochCRCs))
	}
	if m.PrevEpoch != noEpoch && len(m.PrevCRCs) != m.Workers {
		return nil, fmt.Errorf("checkpoint: manifest previous epoch carries %d checksums, want %d",
			len(m.PrevCRCs), m.Workers)
	}
	if m.PrevEpoch != noEpoch && m.PrevEpoch >= m.Epoch {
		return nil, fmt.Errorf("checkpoint: manifest epochs out of order (%d then %d)", m.PrevEpoch, m.Epoch)
	}
	return m, nil
}

// jobFingerprint hashes everything a checkpoint's validity depends on: the
// algorithm, the worker count, the partitioner (the vertex→worker
// assignment must reproduce exactly on resume), the graph epoch (a
// dynamic session's graph mutates in place; epoch N snapshots must never
// restore against epoch M structure) and the graph structure itself.
// Two jobs with the same fingerprint generate the same seed tasks in the
// same partitions, so one's snapshots are restorable by the other.
func jobFingerprint(g *graph.Graph, algoName string, cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%T|%d|", algoName, cfg.Workers, cfg.Partitioner, cfg.GraphEpoch)
	var fold uint64
	g.ForEach(func(v *graph.Vertex) bool {
		fold = fold*0x100000001b3 + uint64(v.ID)*2654435761 + uint64(len(v.Adj))
		return true
	})
	fmt.Fprintf(h, "%d|%d|%t|%t|%x", g.NumVertices(), g.NumEdges(), g.Labeled(), g.Attributed(), fold)
	return h.Sum64()
}
