package cluster_test

import (
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/partition"
)

// smallConfig returns a fast test configuration.
func smallConfig() cluster.Config {
	return cluster.Config{
		Workers:          3,
		Threads:          2,
		CacheCapacity:    512,
		StoreMemCapacity: 256,
		UseLSH:           true,
		ProgressInterval: time.Millisecond,
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 7})
	want := algo.RefTriangles(g)
	if want == 0 {
		t.Fatal("degenerate test graph: no triangles")
	}
	res, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.AggGlobal.(int64)
	if !ok {
		t.Fatalf("AggGlobal type %T", res.AggGlobal)
	}
	if got != want {
		t.Fatalf("triangles: got %d want %d", got, want)
	}
}

func TestMaxCliqueMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 11})
	want := algo.RefMaxClique(g)
	res, err := cluster.Run(g, algo.NewMaxClique(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("max clique: got %d want %d", got, want)
	}
}

func TestGraphMatchMatchesReference(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 13})
	gen.AssignLabels(g, 7, 99)
	p := algo.FigurePattern()
	want := algo.RefMatchCount(g, p)
	if want == 0 {
		t.Fatal("degenerate test graph: no matches")
	}
	res, err := cluster.Run(g, algo.NewGraphMatch(p), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("matches: got %d want %d", got, want)
	}
}

func TestCommunityDetectionMatchesReference(t *testing.T) {
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 20, MinSize: 6, MaxSize: 12, PIn: 0.6, Bridges: 300, Seed: 17,
	})
	cd := algo.NewCommunityDetect(0.6, 4)
	want := algo.RefCommunities(g, cd)
	if len(want) == 0 {
		t.Fatal("degenerate test graph: no communities")
	}
	res, err := cluster.Run(g, cd, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func TestGraphClusteringMatchesReference(t *testing.T) {
	g, _ := gen.Community(gen.CommunityConfig{
		Communities: 15, MinSize: 6, MaxSize: 10, PIn: 0.7, Bridges: 150, Seed: 23,
	})
	exemplar := g.VertexAt(0).Attrs
	gc := algo.NewGraphCluster([][]int32{exemplar}, 0.8, 0.3, 3)
	want := algo.RefClusters(g, gc)
	if len(want) == 0 {
		t.Fatal("degenerate test graph: no clusters")
	}
	res, err := cluster.Run(g, gc, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, res.Records, want)
}

func assertSameRecords(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count: got %d want %d\ngot:  %v\nwant: %v", len(got), len(want), head(got), head(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func head(xs []string) []string {
	if len(xs) > 5 {
		return xs[:5]
	}
	return xs
}

func TestRunWithAllOptionsEnabled(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 31})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.Stealing = true
	cfg.Partitioner = partition.BDG{}
	cfg.CheckpointEvery = 5 * time.Millisecond
	cfg.SampleEvery = 2 * time.Millisecond
	cfg.SpillDir = t.TempDir()
	cfg.CheckpointDir = t.TempDir()
	cfg.StoreMemCapacity = 64 // force spilling
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("triangles: got %d want %d", got, want)
	}
}

func TestRunOverTCP(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1200, Seed: 37})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.UseTCP = true
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("triangles over TCP: got %d want %d", got, want)
	}
}

func TestRunSingleWorkerSingleThread(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1500, Seed: 41})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.Threads = 1
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("triangles: got %d want %d", got, want)
	}
}

func TestNetworkBytesAreCounted(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 43})
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{} // hash partitioning guarantees remote pulls
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.NetBytes == 0 {
		t.Fatal("expected nonzero network traffic with hash partitioning")
	}
	if res.Total.TasksDone == 0 {
		t.Fatal("expected completed tasks")
	}
}

func TestEagerVsStreamingSeeding(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2000, Seed: 47})
	want := algo.RefTriangles(g)
	for _, eager := range []bool{false, true} {
		cfg := smallConfig()
		cfg.EagerSeeding = eager
		res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.AggGlobal.(int64); got != want {
			t.Fatalf("eager=%v: got %d want %d", eager, got, want)
		}
	}
}

func TestLatencySimulationStillCorrect(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 7, Edges: 1200, Seed: 53})
	want := algo.RefTriangles(g)
	cfg := smallConfig()
	cfg.Latency = 200 * time.Microsecond
	cfg.Partitioner = partition.Hash{}
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("triangles with latency: got %d want %d", got, want)
	}
}

func TestTaskStealingProducesSameResults(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 59})
	want := algo.RefMaxClique(g)
	cfg := smallConfig()
	cfg.Stealing = true
	cfg.Partitioner = partition.Skewed{Bias: 0.7}
	res, err := cluster.Run(g, algo.NewMaxClique(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int); got != want {
		t.Fatalf("max clique with stealing: got %d want %d", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.Freeze()
	res, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != 0 {
		t.Fatalf("empty graph: got %d triangles", got)
	}
}
