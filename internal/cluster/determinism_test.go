package cluster_test

import (
	"fmt"
	"strings"
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

// goldenRun executes one workload and flattens its result into a single
// comparable string: the sorted output records plus the final aggregator
// value. Byte-identical goldens across configurations prove that cache
// sharding and pooled wire buffers change performance, not results — a
// pooled-buffer aliasing bug would corrupt records or counts here.
func goldenRun(t *testing.T, g *graph.Graph, a core.Algorithm, shards int) string {
	t.Helper()
	cfg := cluster.Config{
		Workers:          3,
		Threads:          2,
		CacheCapacity:    512,
		CacheShards:      shards,
		StoreMemCapacity: 256,
		UseLSH:           true,
		// Stealing off: the record set must be a pure function of
		// (graph, algorithm, partitioning).
		Stealing: false,
	}
	res, err := cluster.Run(g, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, rec := range res.Records {
		b.WriteString(rec)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "agg=%v\n", res.AggGlobal)
	return b.String()
}

// TestGoldenDeterminismTriangle: the triangle workload must produce
// byte-identical output across shard counts 1 and 16 and across repeated
// runs at the same seed.
func TestGoldenDeterminismTriangle(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 3000, Seed: 41})
	tc := algo.NewTriangleCount()
	baseline := goldenRun(t, g, tc, 1)
	if want := algo.RefTriangles(g); !strings.Contains(baseline, fmt.Sprintf("agg=%d", want)) {
		t.Fatalf("baseline disagrees with sequential reference %d:\n%s", want, tail(baseline))
	}
	for run := 0; run < 2; run++ {
		for _, shards := range []int{1, 16} {
			got := goldenRun(t, g, tc, shards)
			if got != baseline {
				t.Fatalf("run %d shards=%d diverged from shards=1 baseline\ngot:  %s\nwant: %s",
					run, shards, tail(got), tail(baseline))
			}
		}
	}
}

// TestGoldenDeterminismMatch: same golden check for the labeled
// graph-match workload (the Figure 1 pattern).
func TestGoldenDeterminismMatch(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2500, Seed: 13})
	gen.AssignLabels(g, 7, 99)
	p := algo.FigurePattern()
	gm := algo.NewGraphMatch(p)
	baseline := goldenRun(t, g, gm, 1)
	if want := algo.RefMatchCount(g, p); !strings.Contains(baseline, fmt.Sprintf("agg=%d", want)) {
		t.Fatalf("baseline disagrees with sequential reference %d:\n%s", want, tail(baseline))
	}
	for run := 0; run < 2; run++ {
		for _, shards := range []int{1, 16} {
			got := goldenRun(t, g, gm, shards)
			if got != baseline {
				t.Fatalf("run %d shards=%d diverged from shards=1 baseline\ngot:  %s\nwant: %s",
					run, shards, tail(got), tail(baseline))
			}
		}
	}
}

// tail keeps failure messages readable when goldens hold many records.
func tail(s string) string {
	if len(s) > 400 {
		return "..." + s[len(s)-400:]
	}
	return s
}
