package cluster

import (
	"encoding/json"
	"fmt"

	"gminer/internal/jobspec"
	"gminer/internal/metrics"
)

// Control plane of the multi-process cluster. Mux channel 0 is reserved
// for coordinator ↔ worker-process control traffic; job channels start at
// 1 (both Session and RemoteSession allocate from 1). Control payloads
// are JSON: they are tiny, infrequent (job start/stop, final results,
// heartbeats) and evolve more often than the hot-path codecs, so
// self-describing encoding beats hand-rolled wire here.
//
// Message types live in their own range (64+) so a control frame
// misrouted onto a job channel can never be mistaken for an engine
// message (those are 1..11).
// ctrlChannel is the mux channel reserved for the control plane.
const ctrlChannel uint64 = 0

const (
	// ctrlJobStart: coordinator → worker process. Open a job channel,
	// build the engine worker (restoring from the named committed epochs
	// if any), start mining.
	ctrlJobStart uint8 = 64 + iota
	// ctrlJobStop: coordinator → worker process. Tear the job channel
	// down if it is still up (late or lost msgStop backstop).
	ctrlJobStop
	// ctrlJobResult: worker process → coordinator. The worker's final
	// records and counter snapshot for one finished job.
	ctrlJobResult
	// ctrlTopology: coordinator → worker process. The current peer
	// address table; re-broadcast on every join so live workers learn a
	// replacement's address.
	ctrlTopology
	// ctrlHeartbeat: worker process → coordinator. Liveness for /healthz.
	// The payload is a heartbeatMsg carrying the sender's fencing
	// generation and draining state (the frame's from-node identifies the
	// sender; an empty payload is tolerated as a v1-style beat at gen 0).
	ctrlHeartbeat
	// ctrlDrain: worker process → coordinator. The worker received SIGTERM
	// and entered the draining state: hold its jobs, run a barrier
	// checkpoint, and answer ctrlDrainOK once the epoch commits so the
	// worker can detach without losing in-flight work.
	ctrlDrain
	// ctrlDrainOK: coordinator → worker process. Every active job the
	// draining worker participates in has committed a checkpoint epoch (or
	// none were running); it is now safe to exit.
	ctrlDrainOK
)

// maxCtrlPayload bounds a ctrl-plane JSON frame before json.Unmarshal.
// The binary hot-path decoders clamp every length field; JSON carries its
// sizes implicitly, so the only defense against a hostile length prefix
// provoking a giant allocation is refusing the frame outright. 64 MiB
// comfortably covers the largest legitimate payload (a jobResultMsg's
// record list).
const maxCtrlPayload = 64 << 20

// resumeEpochRef names one committed epoch and the commit-time checksum
// of ONE worker's snapshot in it. The coordinator (sole MANIFEST owner)
// sends a rejoining worker its own column of the manifest, newest first.
type resumeEpochRef struct {
	Epoch int64  `json:"epoch"`
	CRC   uint32 `json:"crc"`
}

// jobStartMsg is the ctrlJobStart payload.
type jobStartMsg struct {
	Channel uint64       `json:"channel"`
	JobID   string       `json:"job_id"`
	Spec    jobspec.Spec `json:"spec"`
	// CheckpointEverySeconds carries the per-job checkpoint interval
	// (0 = off).
	CheckpointEverySeconds float64 `json:"checkpoint_every_seconds,omitempty"`
	// Resume lists committed epochs (newest first) the worker should try
	// restoring from; empty means start fresh.
	Resume []resumeEpochRef `json:"resume,omitempty"`
}

// jobStopMsg is the ctrlJobStop payload.
type jobStopMsg struct {
	Channel uint64 `json:"channel"`
}

// jobResultMsg is the ctrlJobResult payload.
type jobResultMsg struct {
	Channel  uint64           `json:"channel"`
	JobID    string           `json:"job_id"`
	Worker   int              `json:"worker"`
	Records  []string         `json:"records"`
	Counters metrics.Snapshot `json:"counters"`
	// CkptErr is the worker's last checkpoint persist failure ("" = none).
	CkptErr string `json:"ckpt_err,omitempty"`
	// Gen is the sender's fencing generation; the coordinator refuses a
	// result from a generation older than the slot's current one.
	Gen int64 `json:"gen,omitempty"`
}

// topologyMsg is the ctrlTopology payload: dial addresses by node index
// (workers 0..K-1, coordinator at K); "" = not yet joined. Gens carries
// each slot's current fencing generation in the same order, so every
// worker process can raise its transport fencing floor for a peer slot
// the moment a replacement claims it.
type topologyMsg struct {
	Peers []string `json:"peers"`
	Gens  []int64  `json:"gens,omitempty"`
}

// heartbeatMsg is the ctrlHeartbeat payload.
type heartbeatMsg struct {
	Gen      int64 `json:"gen"`
	Draining bool  `json:"draining,omitempty"`
}

// drainMsg is the ctrlDrain / ctrlDrainOK payload.
type drainMsg struct {
	Gen int64 `json:"gen"`
}

func encodeCtrl(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All control structs marshal by construction.
		panic(fmt.Sprintf("cluster: control encode: %v", err))
	}
	return b
}

func decodeCtrl(b []byte, v any) error {
	if len(b) > maxCtrlPayload {
		return fmt.Errorf("cluster: control decode: %d-byte frame exceeds %d-byte bound", len(b), maxCtrlPayload)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("cluster: control decode: %w", err)
	}
	return nil
}
