package cluster

import (
	"encoding/json"
	"fmt"

	"gminer/internal/jobspec"
	"gminer/internal/metrics"
)

// Control plane of the multi-process cluster. Mux channel 0 is reserved
// for coordinator ↔ worker-process control traffic; job channels start at
// 1 (both Session and RemoteSession allocate from 1). Control payloads
// are JSON: they are tiny, infrequent (job start/stop, final results,
// heartbeats) and evolve more often than the hot-path codecs, so
// self-describing encoding beats hand-rolled wire here.
//
// Message types live in their own range (64+) so a control frame
// misrouted onto a job channel can never be mistaken for an engine
// message (those are 1..11).
// ctrlChannel is the mux channel reserved for the control plane.
const ctrlChannel uint64 = 0

const (
	// ctrlJobStart: coordinator → worker process. Open a job channel,
	// build the engine worker (restoring from the named committed epochs
	// if any), start mining.
	ctrlJobStart uint8 = 64 + iota
	// ctrlJobStop: coordinator → worker process. Tear the job channel
	// down if it is still up (late or lost msgStop backstop).
	ctrlJobStop
	// ctrlJobResult: worker process → coordinator. The worker's final
	// records and counter snapshot for one finished job.
	ctrlJobResult
	// ctrlTopology: coordinator → worker process. The current peer
	// address table; re-broadcast on every join so live workers learn a
	// replacement's address.
	ctrlTopology
	// ctrlHeartbeat: worker process → coordinator. Liveness for /healthz;
	// the payload is empty (the frame's from-node identifies the sender).
	ctrlHeartbeat
)

// resumeEpochRef names one committed epoch and the commit-time checksum
// of ONE worker's snapshot in it. The coordinator (sole MANIFEST owner)
// sends a rejoining worker its own column of the manifest, newest first.
type resumeEpochRef struct {
	Epoch int64  `json:"epoch"`
	CRC   uint32 `json:"crc"`
}

// jobStartMsg is the ctrlJobStart payload.
type jobStartMsg struct {
	Channel uint64       `json:"channel"`
	JobID   string       `json:"job_id"`
	Spec    jobspec.Spec `json:"spec"`
	// CheckpointEverySeconds carries the per-job checkpoint interval
	// (0 = off).
	CheckpointEverySeconds float64 `json:"checkpoint_every_seconds,omitempty"`
	// Resume lists committed epochs (newest first) the worker should try
	// restoring from; empty means start fresh.
	Resume []resumeEpochRef `json:"resume,omitempty"`
}

// jobStopMsg is the ctrlJobStop payload.
type jobStopMsg struct {
	Channel uint64 `json:"channel"`
}

// jobResultMsg is the ctrlJobResult payload.
type jobResultMsg struct {
	Channel  uint64           `json:"channel"`
	JobID    string           `json:"job_id"`
	Worker   int              `json:"worker"`
	Records  []string         `json:"records"`
	Counters metrics.Snapshot `json:"counters"`
	// CkptErr is the worker's last checkpoint persist failure ("" = none).
	CkptErr string `json:"ckpt_err,omitempty"`
}

// topologyMsg is the ctrlTopology payload: dial addresses by node index
// (workers 0..K-1, coordinator at K); "" = not yet joined.
type topologyMsg struct {
	Peers []string `json:"peers"`
}

func encodeCtrl(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All control structs marshal by construction.
		panic(fmt.Sprintf("cluster: control encode: %v", err))
	}
	return b
}

func decodeCtrl(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("cluster: control decode: %w", err)
	}
	return nil
}
