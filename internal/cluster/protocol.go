// Package cluster implements the G-Miner runtime (§5.1, Figure 4): a
// master coordinating K workers, each running the task pipeline of §4.3
// (task store → candidate retriever → task executor), with task stealing
// (§6.2), periodic aggregator synchronization, checkpoint-based fault
// tolerance (§7) and distributed termination detection.
package cluster

import (
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// Message types of the cluster protocol. Workers are nodes 0..K-1; the
// master is node K.
const (
	// msgPullReq: worker → worker. Payload: vertex ID list. The request
	// listener of the owning worker responds with msgPullResp.
	msgPullReq uint8 = iota + 1
	// msgPullResp: worker → worker. Payload: count + encoded vertices
	// (missing vertices are encoded with a tombstone flag).
	msgPullResp
	// msgProgress: worker → master. Periodic progress report feeding the
	// master's progress table (termination, stealing, aggregation).
	msgProgress
	// msgStealReq: worker → master. "REQ": the sender is idle and wants
	// more tasks.
	msgStealReq
	// msgMigrate: master → worker. "MIGRATE": migrate up to Tnum tasks to
	// the thief named in the payload.
	msgMigrate
	// msgTasks: worker → worker. Payload: encoded migrated tasks.
	msgTasks
	// msgNoTask: worker → worker. "No_Task": the victim had nothing to
	// give; the thief backs off.
	msgNoTask
	// msgAggGlobal: master → worker. Broadcast of the merged global
	// aggregator value.
	msgAggGlobal
	// msgCheckpoint: master → worker. Take a checkpoint at the epoch in
	// the payload.
	msgCheckpointReq
	// msgCheckpointDone: worker → master. Payload: ckptAck — the epoch,
	// the CRC32C of the persisted snapshot payload (what the master
	// records in the MANIFEST at commit time) and an OK flag. A negative
	// ack (snapshot or persist failure, quiesce timeout) makes the master
	// abandon the epoch immediately instead of waiting out its timeout.
	msgCheckpointDone
	// msgStop: master → worker. Job finished; shut down the pipeline.
	msgStop
)

// progressReport is the periodic worker → master report (§5.1: "a
// progress reporter that sends its local progress to the master
// periodically").
type progressReport struct {
	Worker    int
	Inflight  int64 // alive tasks owned by this worker (store+queues+active)
	StoreSize int64 // inactive tasks in the task store (steal candidates)
	TasksSent int64 // cumulative tasks migrated out
	TasksRecv int64 // cumulative tasks migrated in
	Activity  int64 // monotonically increasing on any task intake/death
	SeedsDone bool
	Results   int64
	AggSet    bool   // AggPartial follows
	AggBytes  []byte // encoded aggregator partial
}

func encodeProgress(p *progressReport) []byte {
	w := wire.NewWriter(64)
	encodeProgressInto(w, p)
	return w.Bytes()
}

func encodeProgressInto(w *wire.Writer, p *progressReport) {
	w.Int(p.Worker)
	w.Varint(p.Inflight)
	w.Varint(p.StoreSize)
	w.Varint(p.TasksSent)
	w.Varint(p.TasksRecv)
	w.Varint(p.Activity)
	w.Bool(p.SeedsDone)
	w.Varint(p.Results)
	w.Bool(p.AggSet)
	if p.AggSet {
		w.BytesField(p.AggBytes)
	}
}

func decodeProgress(b []byte) (*progressReport, error) {
	r := wire.NewReader(b)
	p := &progressReport{}
	p.Worker = r.Int()
	p.Inflight = r.Varint()
	p.StoreSize = r.Varint()
	p.TasksSent = r.Varint()
	p.TasksRecv = r.Varint()
	p.Activity = r.Varint()
	p.SeedsDone = r.Bool()
	p.Results = r.Varint()
	p.AggSet = r.Bool()
	if p.AggSet {
		p.AggBytes = r.BytesField()
	}
	return p, r.Err()
}

// encodePullReq / decodePullReq carry the vertex IDs to pull.
func encodePullReq(ids []graph.VertexID) []byte {
	w := wire.NewWriter(16 + 4*len(ids))
	encodePullReqInto(w, ids)
	return w.Bytes()
}

func encodePullReqInto(w *wire.Writer, ids []graph.VertexID) {
	wire.EncodeIDs(w, ids)
}

func decodePullReq(b []byte) ([]graph.VertexID, error) {
	r := wire.NewReader(b)
	ids := wire.DecodeIDs(r)
	return ids, r.Err()
}

// encodePullResp encodes the pulled vertices. Vertices missing from the
// owner's table are encoded as tombstones: present-flag false + bare ID,
// so the requester can unblock waiting tasks (the candidate resolves to
// nil at update time).
func encodePullResp(found []*graph.Vertex, missing []graph.VertexID) []byte {
	w := wire.NewWriter(256)
	encodePullRespInto(w, found, missing)
	return w.Bytes()
}

func encodePullRespInto(w *wire.Writer, found []*graph.Vertex, missing []graph.VertexID) {
	w.Uvarint(uint64(len(found) + len(missing)))
	for _, v := range found {
		w.Bool(true)
		wire.EncodeVertex(w, v)
	}
	for _, id := range missing {
		w.Bool(false)
		w.Varint(int64(id))
	}
}

// pulledVertex is one entry of a pull response.
type pulledVertex struct {
	ID      graph.VertexID
	V       *graph.Vertex // nil for tombstones
	Present bool
}

func decodePullResp(b []byte) ([]pulledVertex, error) {
	r := wire.NewReader(b)
	// Each entry is at least a present flag plus one varint byte; Count
	// rejects length prefixes the payload cannot possibly satisfy.
	n := r.Count(2)
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]pulledVertex, 0, n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v := wire.DecodeVertex(r)
			if v == nil {
				break
			}
			out = append(out, pulledVertex{ID: v.ID, V: v, Present: true})
		} else {
			out = append(out, pulledVertex{ID: graph.VertexID(r.Varint())})
		}
	}
	return out, r.Err()
}

// encodeTasks serializes a migration batch.
func encodeTasks(tasks []*core.Task, codec core.ContextCodec) []byte {
	w := wire.NewWriter(256 * len(tasks))
	encodeTasksInto(w, tasks, codec)
	return w.Bytes()
}

func encodeTasksInto(w *wire.Writer, tasks []*core.Task, codec core.ContextCodec) {
	w.Uvarint(uint64(len(tasks)))
	for _, t := range tasks {
		core.EncodeTask(w, t, codec)
	}
}

func decodeTasks(b []byte, codec core.ContextCodec) ([]*core.Task, error) {
	r := wire.NewReader(b)
	// An encoded task is ≥4 bytes (ID, round, subgraph and list length
	// prefixes); reject counts the payload cannot hold.
	n := r.Count(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]*core.Task, 0, n)
	for i := 0; i < n; i++ {
		t, err := core.DecodeTask(r, codec)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, r.Err()
}

// encodeMigrate names the thief and the batch size Tnum.
func encodeMigrate(thief, tnum int) []byte {
	w := wire.NewWriter(8)
	w.Int(thief)
	w.Int(tnum)
	return w.Bytes()
}

func decodeMigrate(b []byte) (thief, tnum int, err error) {
	r := wire.NewReader(b)
	thief = r.Int()
	tnum = r.Int()
	return thief, tnum, r.Err()
}

func encodeEpoch(epoch int64) []byte {
	w := wire.NewWriter(8)
	w.Varint(epoch)
	return w.Bytes()
}

func decodeEpoch(b []byte) (int64, error) {
	r := wire.NewReader(b)
	e := r.Varint()
	return e, r.Err()
}

// ckptAck is the msgCheckpointDone payload.
type ckptAck struct {
	Epoch int64
	CRC   uint32 // checksum of the persisted snapshot payload; 0 when !OK
	OK    bool
	// Gen is the acking worker's fencing generation (0 = unfenced
	// single-process mode). The master drops acks from a fenced-out
	// generation, and the snapshot sink refuses to commit them: a zombie
	// must not be able to vouch for an epoch its replacement did not write.
	Gen int64
}

func encodeCkptAck(epoch int64, crc uint32, ok bool, gen int64) []byte {
	w := wire.NewWriter(24)
	w.Varint(epoch)
	w.Uvarint(uint64(crc))
	w.Bool(ok)
	w.Varint(gen)
	return w.Bytes()
}

func decodeCkptAck(b []byte) (ckptAck, error) {
	r := wire.NewReader(b)
	a := ckptAck{}
	a.Epoch = r.Varint()
	a.CRC = uint32(r.Uvarint())
	a.OK = r.Bool()
	a.Gen = r.Varint()
	return a, r.Err()
}
