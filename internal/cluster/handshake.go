package cluster

import (
	"errors"
	"fmt"

	"gminer/internal/wire"
)

// Join/hello handshake of the multi-process cluster. A worker process
// dials the coordinator and sends a hello frame (transport.FrameHello)
// naming the protocol version it speaks, the node slot it claims (or -1
// for "assign me one"), the fingerprint of the graph + engine config it
// loaded, and the address peers should dial to reach it. The coordinator
// answers with a welcome frame: either a rejection with a reason, or the
// assigned node index plus the current peer address table.
//
// The version gate is what lets a rolling restart fail fast instead of
// corrupting a job: an old worker binary speaking handshakeVersion N
// against a coordinator at N+1 is refused at decode time, before it can
// join a mux channel. The fingerprint gate likewise refuses a worker that
// loaded a different graph, worker count or partitioner — any of which
// would silently break the determinism contract.

// handshakeVersion is the join protocol version. Bump on any incompatible
// change to the hello/welcome codecs or the control-plane messages.
// v2: transport frames carry a fencing generation, the welcome assigns
// one, the hello lists locally-held checkpoint epochs, and heartbeats are
// JSON payloads carrying the sender's generation.
const handshakeVersion = 2

// helloMagic / welcomeMagic open every handshake frame, so a stray or
// corrupt frame is distinguishable from a version skew.
const (
	helloMagic   = "GMHS"
	welcomeMagic = "GMWL"
)

// maxHandshakeAddr bounds an advertised address; maxHandshakePeers bounds
// the welcome's peer table. Both keep a hostile frame from provoking a
// large allocation.
const (
	maxHandshakeAddr  = 256
	maxHandshakePeers = 4096
	// maxHeldJobs / maxHeldEpochs bound the hello's held-checkpoint list:
	// jobs a restarted worker still has snapshot files for, and epochs per
	// job (the manifest only ever vouches for two).
	maxHeldJobs   = 256
	maxHeldEpochs = 16
	maxHeldJobID  = 256
)

// errVersionMismatch is returned by the decoders when the frame is
// well-formed but speaks a different handshake version.
var errVersionMismatch = errors.New("cluster: handshake version mismatch")

// heldEpochs names the committed-checkpoint epochs a (re)joining worker
// still holds local snapshot files for, one entry per job checkpoint
// directory. The coordinator intersects these across workers on a
// multi-process resume to pick the highest epoch every worker can
// restore. Epochs are newest-first; only files that parse as checkpoint
// names are listed (the commit-time CRC is still verified at restore).
type heldEpochs struct {
	JobID  string
	Epochs []int64
}

// helloFrame is the worker → coordinator join request.
type helloFrame struct {
	Version     uint32
	Node        int32  // claimed node slot, or -1 to be assigned one
	Fingerprint uint64 // jobFingerprint of the worker's graph + config
	Advertise   string // address peers dial to reach this worker
	// Held lists this worker's locally-held checkpoint epochs per job
	// (empty for fresh workers or slot auto-assignment: a worker that does
	// not yet know its node index cannot name its snapshot files).
	Held []heldEpochs
}

// welcomeFrame is the coordinator → worker reply.
type welcomeFrame struct {
	OK      bool
	Reason  string   // rejection reason when !OK
	Node    int32    // assigned node slot
	Workers int32    // cluster worker count K (nodes are 0..K, master at K)
	Peers   []string // dial addresses by node index; "" = not yet joined
	// Generation is the slot's fencing token: stamped on every frame this
	// worker sends, refused everywhere once a later generation claims the
	// slot.
	Generation int64
}

func encodeHello(h helloFrame) []byte {
	w := wire.NewWriter(64 + len(h.Advertise))
	for i := 0; i < len(helloMagic); i++ {
		w.Byte(helloMagic[i])
	}
	w.Uvarint(uint64(h.Version))
	w.Varint(int64(h.Node))
	w.Uvarint(h.Fingerprint)
	w.String(h.Advertise)
	w.Uvarint(uint64(len(h.Held)))
	for _, he := range h.Held {
		w.String(he.JobID)
		w.Uvarint(uint64(len(he.Epochs)))
		for _, e := range he.Epochs {
			w.Varint(e)
		}
	}
	return w.Bytes()
}

func decodeHello(b []byte) (helloFrame, error) {
	var h helloFrame
	if len(b) < len(helloMagic) || string(b[:len(helloMagic)]) != helloMagic {
		return h, fmt.Errorf("cluster: hello: bad magic")
	}
	r := wire.NewReader(b[len(helloMagic):])
	h.Version = uint32(r.Uvarint())
	h.Node = int32(r.Varint())
	h.Fingerprint = r.Uvarint()
	h.Advertise = r.String()
	// Gate the version before walking variable-length sections: a v1 frame
	// has no held list, and decoding one as v2 would misreport the skew.
	if r.Err() == nil && h.Version != handshakeVersion {
		return helloFrame{}, fmt.Errorf("%w: peer speaks v%d, this binary v%d",
			errVersionMismatch, h.Version, handshakeVersion)
	}
	nj := r.Uvarint()
	if r.Err() == nil && nj > maxHeldJobs {
		return helloFrame{}, fmt.Errorf("cluster: hello: %d held jobs", nj)
	}
	for i := uint64(0); i < nj && r.Err() == nil; i++ {
		var he heldEpochs
		he.JobID = r.String()
		if len(he.JobID) > maxHeldJobID {
			return helloFrame{}, fmt.Errorf("cluster: hello: held job id %d bytes long", len(he.JobID))
		}
		ne := r.Uvarint()
		if r.Err() == nil && ne > maxHeldEpochs {
			return helloFrame{}, fmt.Errorf("cluster: hello: %d held epochs", ne)
		}
		for j := uint64(0); j < ne && r.Err() == nil; j++ {
			he.Epochs = append(he.Epochs, r.Varint())
		}
		h.Held = append(h.Held, he)
	}
	if err := r.Err(); err != nil {
		return helloFrame{}, fmt.Errorf("cluster: hello: %w", err)
	}
	if r.Remaining() != 0 {
		return helloFrame{}, fmt.Errorf("cluster: hello: %d trailing bytes", r.Remaining())
	}
	if len(h.Advertise) > maxHandshakeAddr {
		return helloFrame{}, fmt.Errorf("cluster: hello: advertise address %d bytes long", len(h.Advertise))
	}
	return h, nil
}

func encodeWelcome(wf welcomeFrame) []byte {
	w := wire.NewWriter(64)
	for i := 0; i < len(welcomeMagic); i++ {
		w.Byte(welcomeMagic[i])
	}
	w.Uvarint(handshakeVersion)
	w.Bool(wf.OK)
	w.String(wf.Reason)
	w.Varint(int64(wf.Node))
	w.Varint(int64(wf.Workers))
	w.Uvarint(uint64(len(wf.Peers)))
	for _, p := range wf.Peers {
		w.String(p)
	}
	w.Varint(wf.Generation)
	return w.Bytes()
}

func decodeWelcome(b []byte) (welcomeFrame, error) {
	var wf welcomeFrame
	if len(b) < len(welcomeMagic) || string(b[:len(welcomeMagic)]) != welcomeMagic {
		return wf, fmt.Errorf("cluster: welcome: bad magic")
	}
	r := wire.NewReader(b[len(welcomeMagic):])
	version := uint32(r.Uvarint())
	wf.OK = r.Bool()
	wf.Reason = r.String()
	wf.Node = int32(r.Varint())
	wf.Workers = int32(r.Varint())
	n := r.Uvarint()
	if r.Err() == nil && n > maxHandshakePeers {
		return welcomeFrame{}, fmt.Errorf("cluster: welcome: %d peers", n)
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		p := r.String()
		if len(p) > maxHandshakeAddr {
			return welcomeFrame{}, fmt.Errorf("cluster: welcome: peer address %d bytes long", len(p))
		}
		wf.Peers = append(wf.Peers, p)
	}
	wf.Generation = r.Varint()
	if err := r.Err(); err != nil {
		return welcomeFrame{}, fmt.Errorf("cluster: welcome: %w", err)
	}
	if r.Remaining() != 0 {
		return welcomeFrame{}, fmt.Errorf("cluster: welcome: %d trailing bytes", r.Remaining())
	}
	if version != handshakeVersion {
		return welcomeFrame{}, fmt.Errorf("%w: peer speaks v%d, this binary v%d",
			errVersionMismatch, version, handshakeVersion)
	}
	return wf, nil
}

// validateHello applies the coordinator's admission gates to a decoded
// hello. A nil error means the worker may be assigned (or keep) a slot.
func validateHello(h helloFrame, fingerprint uint64, workers int) error {
	if h.Fingerprint != fingerprint {
		return fmt.Errorf("cluster: join rejected: graph/config fingerprint %016x does not match coordinator %016x (same graph, -workers, -partitioner and -labels required)",
			h.Fingerprint, fingerprint)
	}
	if h.Node >= int32(workers) {
		return fmt.Errorf("cluster: join rejected: claimed node %d of a %d-worker cluster", h.Node, workers)
	}
	if h.Advertise == "" {
		return fmt.Errorf("cluster: join rejected: empty advertise address")
	}
	return nil
}
