package cluster

import (
	"testing"

	"gminer/internal/core"
	"gminer/internal/graph"
)

// Fuzz targets for every decoder that consumes bytes off the wire. The
// transport delivers whatever a peer (or a chaos-corrupted frame) sends,
// so decoders must reject arbitrary input without panicking or allocating
// proportionally to an attacker-chosen length prefix.

func FuzzDecodePullResp(f *testing.F) {
	f.Add(encodePullResp(nil, nil))
	v := &graph.Vertex{ID: 3, Label: 1, Attrs: []int32{7}, Adj: []graph.VertexID{1, 2}}
	f.Add(encodePullResp([]*graph.Vertex{v}, []graph.VertexID{9}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // huge count, no payload
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodePullResp(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Present && e.V == nil {
				t.Fatal("present entry with nil vertex")
			}
		}
	})
}

func FuzzDecodeTasks(f *testing.F) {
	task := &core.Task{ID: 42, Cands: []graph.VertexID{1, 2, 3}}
	task.Subgraph.AddEdge(1, 2)
	f.Add(encodeTasks(nil, core.NoContext{}))
	f.Add(encodeTasks([]*core.Task{task}, core.NoContext{}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := decodeTasks(data, core.NoContext{})
		if err != nil {
			return
		}
		for _, task := range tasks {
			if task == nil {
				t.Fatal("decoded nil task without error")
			}
		}
	})
}

func FuzzDecodeProgress(f *testing.F) {
	f.Add(encodeProgress(&progressReport{Worker: 1, Inflight: 5, AggSet: true, AggBytes: []byte{1, 2}}))
	f.Add(encodeProgress(&progressReport{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeProgress(data)
	})
}

func FuzzDecodeMigrate(f *testing.F) {
	f.Add(encodeMigrate(2, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = decodeMigrate(data)
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(&workerSnapshot{Epoch: 3, SeedCursor: 7, Results: []string{"a", "b"}}))
	f.Add(encodeSnapshot(&workerSnapshot{AggBytes: []byte{1}}))
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
