package cluster

import (
	"testing"

	"gminer/internal/core"
	"gminer/internal/graph"
)

// Fuzz targets for every decoder that consumes bytes off the wire. The
// transport delivers whatever a peer (or a chaos-corrupted frame) sends,
// so decoders must reject arbitrary input without panicking or allocating
// proportionally to an attacker-chosen length prefix.

func FuzzDecodePullResp(f *testing.F) {
	f.Add(encodePullResp(nil, nil))
	v := &graph.Vertex{ID: 3, Label: 1, Attrs: []int32{7}, Adj: []graph.VertexID{1, 2}}
	f.Add(encodePullResp([]*graph.Vertex{v}, []graph.VertexID{9}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // huge count, no payload
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodePullResp(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Present && e.V == nil {
				t.Fatal("present entry with nil vertex")
			}
		}
	})
}

func FuzzDecodeTasks(f *testing.F) {
	task := &core.Task{ID: 42, Cands: []graph.VertexID{1, 2, 3}}
	task.Subgraph.AddEdge(1, 2)
	f.Add(encodeTasks(nil, core.NoContext{}))
	f.Add(encodeTasks([]*core.Task{task}, core.NoContext{}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := decodeTasks(data, core.NoContext{})
		if err != nil {
			return
		}
		for _, task := range tasks {
			if task == nil {
				t.Fatal("decoded nil task without error")
			}
		}
	})
}

func FuzzDecodeProgress(f *testing.F) {
	f.Add(encodeProgress(&progressReport{Worker: 1, Inflight: 5, AggSet: true, AggBytes: []byte{1, 2}}))
	f.Add(encodeProgress(&progressReport{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeProgress(data)
	})
}

func FuzzDecodeMigrate(f *testing.F) {
	f.Add(encodeMigrate(2, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = decodeMigrate(data)
	})
}

func FuzzDecodeManifest(f *testing.F) {
	f.Add(encodeManifest(&manifest{Fingerprint: 7, Workers: 2, Epoch: 3,
		EpochCRCs: []uint32{1, 2}, PrevEpoch: 1, PrevCRCs: []uint32{3, 4}}))
	f.Add(encodeManifest(&manifest{Fingerprint: 1, Workers: 1, Epoch: 1,
		EpochCRCs: []uint32{9}, PrevEpoch: noEpoch}))
	f.Add([]byte(manifestMagic))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// Anything that decodes must uphold the invariants restore leans on.
		if m.Workers <= 0 || len(m.EpochCRCs) != m.Workers {
			t.Fatalf("invalid manifest decoded cleanly: %+v", m)
		}
		if m.PrevEpoch != noEpoch && (m.PrevEpoch >= m.Epoch || len(m.PrevCRCs) != m.Workers) {
			t.Fatalf("inconsistent previous epoch decoded cleanly: %+v", m)
		}
	})
}

func FuzzUnframeSnapshot(f *testing.F) {
	f.Add(frame(snapshotMagic, encodeSnapshot(&workerSnapshot{Epoch: 1, Results: []string{"x"}})))
	f.Add(frame(snapshotMagic, nil))
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, crc, err := unframe(snapshotMagic, data)
		if err != nil {
			return
		}
		if got := checksum(payload); got != crc {
			t.Fatalf("unframe accepted payload with checksum %08x, reported %08x", got, crc)
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(&workerSnapshot{Epoch: 3, SeedCursor: 7, Results: []string{"a", "b"}}))
	f.Add(encodeSnapshot(&workerSnapshot{AggBytes: []byte{1}}))
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(encodeHello(helloFrame{Version: handshakeVersion, Node: -1, Fingerprint: 42, Advertise: "127.0.0.1:7078"}))
	f.Add(encodeHello(helloFrame{Version: handshakeVersion + 9, Node: 2, Fingerprint: 1, Advertise: "h:1"}))
	f.Add([]byte("GMHS"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		if h.Version != handshakeVersion {
			t.Fatalf("accepted hello with version %d", h.Version)
		}
		if len(h.Advertise) > maxHandshakeAddr {
			t.Fatalf("accepted %d-byte advertise address", len(h.Advertise))
		}
	})
}

// The control plane is JSON, so the decoder cannot rely on per-field
// length clamps the way the binary codecs do; it must instead refuse
// oversized frames outright and reject malformed JSON without panicking,
// whatever struct the caller aims it at.
func FuzzDecodeCtrl(f *testing.F) {
	f.Add(encodeCtrl(jobStartMsg{Channel: 1, JobID: "job-1",
		Resume: []resumeEpochRef{{Epoch: 3, CRC: 7}}}))
	f.Add(encodeCtrl(jobStopMsg{Channel: 2}))
	f.Add(encodeCtrl(jobResultMsg{Channel: 1, JobID: "job-1", Worker: 0,
		Records: []string{"r"}, Gen: 2}))
	f.Add(encodeCtrl(topologyMsg{Peers: []string{"a:1", "", "c:3"}, Gens: []int64{1, 0, 2}}))
	f.Add(encodeCtrl(heartbeatMsg{Gen: 3, Draining: true}))
	f.Add(encodeCtrl(drainMsg{Gen: 1}))
	f.Add([]byte("{"))
	f.Add([]byte(`{"gen":"not a number"}`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		var start jobStartMsg
		_ = decodeCtrl(data, &start)
		var res jobResultMsg
		_ = decodeCtrl(data, &res)
		var topo topologyMsg
		_ = decodeCtrl(data, &topo)
		var hb heartbeatMsg
		_ = decodeCtrl(data, &hb)
		var dr drainMsg
		_ = decodeCtrl(data, &dr)
	})
}

func FuzzDecodeWelcome(f *testing.F) {
	f.Add(encodeWelcome(welcomeFrame{OK: true, Node: 1, Workers: 3, Peers: []string{"a:1", "", "c:3"}}))
	f.Add(encodeWelcome(welcomeFrame{OK: false, Reason: "fingerprint mismatch"}))
	f.Add([]byte("GMWL"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := decodeWelcome(data)
		if err != nil {
			return
		}
		if len(w.Peers) > maxHandshakePeers {
			t.Fatalf("accepted %d-entry peer table", len(w.Peers))
		}
		for _, p := range w.Peers {
			if len(p) > maxHandshakeAddr {
				t.Fatalf("accepted %d-byte peer address", len(p))
			}
		}
	})
}
