package cluster

import "sync/atomic"

// fenceTable is the cluster's fencing-token ledger: the current generation
// of every worker slot (1-based; generation rises by one each time a
// process claims the slot). It is shared by everything on the coordinator
// that must refuse a zombie — the control loop, the job master's
// checkpoint-ack handler, and the snapshot sink's commit — so a single
// admission decision fences the old holder everywhere at once.
//
// A nil *fenceTable means "unfenced" (single-process mode): every check
// passes. Generations only ever rise; raise() is a CAS loop so a stale
// update can never lower one.
type fenceTable struct {
	gens []atomic.Int64 // by worker slot
}

func newFenceTable(workers int) *fenceTable {
	return &fenceTable{gens: make([]atomic.Int64, workers)}
}

// current returns the slot's present generation (0 before any admission).
func (f *fenceTable) current(slot int) int64 {
	if f == nil || slot < 0 || slot >= len(f.gens) {
		return 0
	}
	return f.gens[slot].Load()
}

// raise lifts the slot's generation to at least gen. Monotonic: a
// reordered or replayed update can never un-fence a slot.
func (f *fenceTable) raise(slot int, gen int64) {
	if f == nil || slot < 0 || slot >= len(f.gens) {
		return
	}
	for {
		cur := f.gens[slot].Load()
		if gen <= cur || f.gens[slot].CompareAndSwap(cur, gen) {
			return
		}
	}
}

// stale reports whether a message stamped with gen from the slot should
// be refused: the slot has since been claimed by a later generation.
// Unfenced traffic (nil table, or gen 0 against a gen-0 slot) passes.
func (f *fenceTable) stale(slot int, gen int64) bool {
	if f == nil {
		return false
	}
	return gen < f.current(slot)
}
