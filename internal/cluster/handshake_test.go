package cluster

import (
	"errors"
	"strings"
	"testing"
)

func TestHandshakeHelloRoundTrip(t *testing.T) {
	in := helloFrame{
		Version:     handshakeVersion,
		Node:        -1,
		Fingerprint: 0xdeadbeefcafe,
		Advertise:   "127.0.0.1:41234",
	}
	out, err := decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.Node != in.Node ||
		out.Fingerprint != in.Fingerprint || out.Advertise != in.Advertise ||
		len(out.Held) != 0 {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}

	// A rejoining worker's hello also carries its held checkpoint epochs.
	in.Held = []heldEpochs{
		{JobID: "job-1", Epochs: []int64{5, 3}},
		{JobID: "job-2", Epochs: []int64{12}},
	}
	out, err = decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Held) != len(in.Held) {
		t.Fatalf("held round trip: got %d jobs want %d", len(out.Held), len(in.Held))
	}
	for i, he := range in.Held {
		if out.Held[i].JobID != he.JobID || len(out.Held[i].Epochs) != len(he.Epochs) {
			t.Fatalf("held job %d: got %+v want %+v", i, out.Held[i], he)
		}
		for j, e := range he.Epochs {
			if out.Held[i].Epochs[j] != e {
				t.Fatalf("held job %d epoch %d: got %d want %d", i, j, out.Held[i].Epochs[j], e)
			}
		}
	}
}

func TestHandshakeWelcomeRoundTrip(t *testing.T) {
	in := welcomeFrame{
		OK:         true,
		Node:       2,
		Workers:    3,
		Peers:      []string{"127.0.0.1:1", "", "127.0.0.1:3", "127.0.0.1:4"},
		Generation: 7,
	}
	out, err := decodeWelcome(encodeWelcome(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.OK != in.OK || out.Node != in.Node || out.Workers != in.Workers ||
		len(out.Peers) != len(in.Peers) || out.Generation != in.Generation {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	for i := range in.Peers {
		if out.Peers[i] != in.Peers[i] {
			t.Fatalf("peer %d: got %q want %q", i, out.Peers[i], in.Peers[i])
		}
	}

	rej := welcomeFrame{OK: false, Reason: "fingerprint mismatch"}
	out, err = decodeWelcome(encodeWelcome(rej))
	if err != nil {
		t.Fatal(err)
	}
	if out.OK || out.Reason != rej.Reason {
		t.Fatalf("rejection round trip: %+v", out)
	}
}

// Every malformed hello must be rejected with an error, never a panic or
// a silently-wrong frame.
func TestDecodeHelloRejects(t *testing.T) {
	good := helloFrame{
		Version:     handshakeVersion,
		Node:        1,
		Fingerprint: 42,
		Advertise:   "127.0.0.1:9",
	}
	goodBytes := encodeHello(good)

	versionSkew := encodeHello(helloFrame{Version: handshakeVersion + 1, Node: 1, Fingerprint: 42, Advertise: "a:1"})

	cases := []struct {
		name        string
		data        []byte
		wantVersion bool // error must unwrap to errVersionMismatch
	}{
		{name: "empty", data: nil},
		{name: "bad magic", data: []byte("XXXX\x01\x02")},
		{name: "magic only", data: []byte("GMHS")},
		{name: "truncated after version", data: goodBytes[:5]},
		{name: "truncated mid-address", data: goodBytes[:len(goodBytes)-3]},
		{name: "trailing garbage", data: append(append([]byte{}, goodBytes...), 0xAA)},
		{name: "version mismatch", data: versionSkew, wantVersion: true},
		{
			name: "huge address length prefix",
			// magic + version + node + fingerprint + a string length the
			// payload cannot possibly satisfy.
			data: append(goodBytes[:7], 0xff, 0xff, 0xff, 0xff, 0x0f),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeHello(tc.data)
			if err == nil {
				t.Fatalf("decodeHello(%q) accepted a malformed frame", tc.data)
			}
			if tc.wantVersion != errors.Is(err, errVersionMismatch) {
				t.Fatalf("error %v: errVersionMismatch=%v, want %v", err, !tc.wantVersion, tc.wantVersion)
			}
		})
	}
}

func TestDecodeWelcomeRejects(t *testing.T) {
	good := encodeWelcome(welcomeFrame{OK: true, Node: 0, Workers: 3, Peers: []string{"a:1", "b:2"}})
	// A well-formed frame whose version uvarint (the byte after the magic)
	// is bumped: everything decodes, then the version gate must fire.
	versionSkew := append([]byte{}, good...)
	versionSkew[len(welcomeMagic)] = handshakeVersion + 1
	cases := []struct {
		name        string
		data        []byte
		wantVersion bool
	}{
		{name: "empty", data: nil},
		{name: "bad magic", data: []byte("NOPE")},
		{name: "truncated", data: good[:6]},
		{name: "truncated peer table", data: good[:len(good)-2]},
		{name: "trailing garbage", data: append(append([]byte{}, good...), 1)},
		{name: "huge peer count", data: append(good[:5], 0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeWelcome(tc.data)
			if err == nil {
				t.Fatalf("decodeWelcome(%q) accepted a malformed frame", tc.data)
			}
			if tc.wantVersion != errors.Is(err, errVersionMismatch) {
				t.Fatalf("error %v: errVersionMismatch mismatch", err)
			}
		})
	}
	if _, err := decodeWelcome(versionSkew); !errors.Is(err, errVersionMismatch) {
		t.Fatalf("version-skewed welcome: %v", err)
	}
}

// The coordinator's admission gates: a decodable hello can still be
// refused for a fingerprint or slot mismatch.
func TestValidateHello(t *testing.T) {
	const fp = uint64(0x1234)
	base := helloFrame{Version: handshakeVersion, Node: -1, Fingerprint: fp, Advertise: "h:1"}

	if err := validateHello(base, fp, 3); err != nil {
		t.Fatalf("matching hello refused: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(h *helloFrame)
		wantSub string
	}{
		{"fingerprint mismatch", func(h *helloFrame) { h.Fingerprint = fp + 1 }, "fingerprint"},
		{"slot out of range", func(h *helloFrame) { h.Node = 3 }, "claimed node"},
		{"no advertise addr", func(h *helloFrame) { h.Advertise = "" }, "advertise"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := base
			tc.mutate(&h)
			err := validateHello(h, fp, 3)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
