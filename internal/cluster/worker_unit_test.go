package cluster

import (
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/transport"
)

// newTestWorker builds a worker over a tiny 2-partition graph without
// starting its goroutines, for white-box pipeline tests.
func newTestWorker(t *testing.T) (*Worker, *graph.Graph, *transport.LocalNetwork) {
	t.Helper()
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 300, Seed: 9})
	cfg := Config{Workers: 2, Threads: 1, ProgressInterval: time.Millisecond}.Defaults()
	assign, err := partition.Hash{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewLocal(transport.LocalConfig{Nodes: 3})
	t.Cleanup(net.Close)
	w, err := newWorker(0, cfg, algo.NewTriangleCount(), g, assign, nil, net.Endpoint(0),
		&metrics.Counters{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w, g, net
}

func TestComputeToPullDeduplicatesAndFiltersLocal(t *testing.T) {
	w, g, _ := newTestWorker(t)
	var local, remote graph.VertexID = -1, -1
	g.ForEach(func(v *graph.Vertex) bool {
		if w.assign.Owner(v.ID) == 0 && local < 0 {
			local = v.ID
		}
		if w.assign.Owner(v.ID) == 1 && remote < 0 {
			remote = v.ID
		}
		return local >= 0 && remote >= 0 == false
	})
	if local < 0 || remote < 0 {
		t.Skip("degenerate partition")
	}
	task := &core.Task{Cands: []graph.VertexID{
		local, remote, remote, graph.VertexID(1 << 40), // dup + dangling
	}}
	w.computeToPull(task)
	if len(task.ToPull) != 1 || task.ToPull[0] != remote {
		t.Fatalf("ToPull=%v want [%d]", task.ToPull, remote)
	}
}

func TestResolvePrefersLocalThenCache(t *testing.T) {
	w, g, _ := newTestWorker(t)
	var local graph.VertexID = -1
	g.ForEach(func(v *graph.Vertex) bool {
		if w.assign.Owner(v.ID) == 0 {
			local = v.ID
			return false
		}
		return true
	})
	cached := &graph.Vertex{ID: 1 << 20, Adj: []graph.VertexID{1}}
	w.cache.ForceInsert(cached)
	got := w.resolve([]graph.VertexID{local, cached.ID, 1 << 40})
	if got[0] == nil || got[0].ID != local {
		t.Fatalf("local resolve failed: %+v", got[0])
	}
	if got[1] != cached {
		t.Fatalf("cache resolve failed: %+v", got[1])
	}
	if got[2] != nil {
		t.Fatal("dangling candidate should resolve to nil")
	}
}

func TestSeedScanOrderIsHashShuffled(t *testing.T) {
	w, _, _ := newTestWorker(t)
	if len(w.localIDs) < 8 {
		t.Skip("too few local vertices")
	}
	ascending := true
	for i := 1; i < len(w.localIDs); i++ {
		if w.localIDs[i] < w.localIDs[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		t.Fatal("seed scan order is ID-sorted; the vertex-table hash shuffle is missing")
	}
}

func TestFlushPullsBatchesByOwner(t *testing.T) {
	w, g, net := newTestWorker(t)
	// Queue two pulls for worker 1 through dispatch's batch, then flush.
	var remotes []graph.VertexID
	g.ForEach(func(v *graph.Vertex) bool {
		if w.assign.Owner(v.ID) == 1 {
			remotes = append(remotes, v.ID)
		}
		return len(remotes) < 3
	})
	if len(remotes) < 2 {
		t.Skip("degenerate partition")
	}
	task := &core.Task{Cands: remotes, ToPull: remotes}
	w.dispatch(task)
	w.flushPulls()
	// One batched message should arrive at worker 1 carrying all IDs.
	msg, ok := net.Endpoint(1).RecvTimeout(time.Second)
	if !ok || msg.Type != msgPullReq {
		t.Fatalf("no pull request: %+v ok=%v", msg, ok)
	}
	ids, err := decodePullReq(msg.Payload)
	if err != nil || len(ids) != len(remotes) {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	if _, more := net.Endpoint(1).RecvTimeout(10 * time.Millisecond); more {
		t.Fatal("pulls were not batched into one message")
	}
}

func TestHandlePullRespReadiesTask(t *testing.T) {
	w, g, _ := newTestWorker(t)
	var remotes []graph.VertexID
	g.ForEach(func(v *graph.Vertex) bool {
		if w.assign.Owner(v.ID) == 1 {
			remotes = append(remotes, v.ID)
		}
		return len(remotes) < 2
	})
	if len(remotes) < 2 {
		t.Skip("degenerate partition")
	}
	task := &core.Task{Cands: remotes, ToPull: remotes}
	w.dispatch(task)
	if w.cpq.len() != 0 {
		t.Fatal("task ready before pulls resolved")
	}
	var found []*graph.Vertex
	for _, id := range remotes {
		found = append(found, g.Vertex(id))
	}
	w.handlePullResp(encodePullResp(found, nil))
	if w.cpq.len() != 1 {
		t.Fatalf("task not readied: cpq=%d", w.cpq.len())
	}
	// The pulled vertices are pinned for the task.
	for _, id := range remotes {
		if w.cache.Refs(id) < 1 {
			t.Fatalf("vertex %d not pinned", id)
		}
	}
}

func TestHandlePullRespTombstone(t *testing.T) {
	w, _, _ := newTestWorker(t)
	missing := graph.VertexID(1 << 30)
	task := &core.Task{Cands: []graph.VertexID{missing}, ToPull: []graph.VertexID{missing}}
	// Force-register the pull (computeToPull would drop a dangling ID;
	// this models an owner-map/graph inconsistency).
	w.pendMu.Lock()
	pt := &pendingTask{t: task, remaining: 1}
	w.pulls[missing] = &pullState{waiters: []*pendingTask{pt}, owner: 1}
	w.pendingTasks++
	w.pendMu.Unlock()

	w.handlePullResp(encodePullResp(nil, []graph.VertexID{missing}))
	if w.cpq.len() != 1 {
		t.Fatal("tombstone did not unblock the task")
	}
	if _, ok := w.cache.Peek(missing); ok {
		t.Fatal("tombstone cached as a vertex")
	}
}
