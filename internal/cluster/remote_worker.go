package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/chaos"
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/kernels"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/transport"
)

// WorkerOptions configures one worker process of a multi-process cluster.
type WorkerOptions struct {
	// Coordinator is the coordinator's cluster address (its -cluster-listen
	// advertise address).
	Coordinator string
	// Node is the slot this process claims: -1 (the default for fresh
	// fleets) asks the coordinator to assign one; an explicit index is how
	// a replacement process takes over a crashed worker's slot and
	// checkpoints.
	Node int
	// Listen is this process's TCP listen address ("127.0.0.1:0" default).
	Listen string
	// Advertise is the address peers dial to reach this worker; defaults
	// to the bound listen address.
	Advertise string
	// CheckpointDir is where this process keeps its per-job snapshot
	// files; a replacement claiming the same slot must point at the same
	// directory (or a copy) to restore. Empty keeps snapshots in memory —
	// durable across worker kills within the process, not across restarts.
	CheckpointDir string
	// JoinTimeout bounds the join handshake, redials included (default 30s
	// — a coordinator restart takes seconds).
	JoinTimeout time.Duration
	// HeartbeatEvery is the liveness report period (default 250ms).
	HeartbeatEvery time.Duration
	// Redial is the dial retry budget for worker → peer traffic; zero
	// inherits the transport default (10s).
	Redial transport.RedialPolicy
	// HeartbeatChaos, when set, injects faults (drops, delays, dups) into
	// this worker's heartbeat path only — the soak harness for "delayed
	// but alive worker gets fenced, not split-brained".
	HeartbeatChaos *chaos.Controller
	// Logf, if non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 30 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	return o
}

// workerJob is one live job's state inside a worker process.
type workerJob struct {
	channel  uint64
	id       string
	w        *Worker
	counters *metrics.Counters
}

// WorkerProcess hosts one engine worker node in its own OS process: it
// joins a coordinator (handshake), builds its partition-local vertex table,
// then serves every job the coordinator starts over muxed channels of the
// shared remote transport. The graph and engine config must match the
// coordinator's byte for byte — the join fingerprint enforces it.
type WorkerProcess struct {
	g    *graph.Graph
	cfg  Config
	opt  WorkerOptions
	node int

	fingerprint uint64
	assign      *partition.Assignment
	local       *localTable

	// csr is the process-wide degree-ranked adjacency index for compiled
	// plans, built lazily on the first plan-capable job and shared by every
	// subsequent one (the resident graph never changes under a process).
	csrOnce sync.Once
	csr     *kernels.CSR

	net *transport.RemoteNetwork
	mux *transport.Mux
	ctl transport.Endpoint

	// generation is this process's fencing token, assigned by the
	// coordinator's welcome: stamped on every transport frame, heartbeat,
	// checkpoint ack, result message and checkpoint filename.
	generation int64
	// draining is set when the process received SIGTERM and is waiting for
	// a barrier checkpoint to commit before detaching.
	draining atomic.Bool
	// drainOK is closed when the coordinator releases the process (its
	// jobs' barrier epochs committed).
	drainOK     chan struct{}
	drainOKOnce sync.Once

	stopOnce sync.Once
	stopCh   chan struct{}
	ctlDone  chan struct{}  // closed when the control loop exits (transport down)
	loopWg   sync.WaitGroup // ctl + heartbeat loops (exit when the transport closes)
	jobWg    sync.WaitGroup // runJob goroutines (exit when their job stops)

	mu     sync.Mutex
	jobs   map[uint64]*workerJob
	closed bool
	killed bool
}

// StartWorkerProcess joins the coordinator and starts serving jobs. It
// blocks through the handshake (dial retries within opt.JoinTimeout) and
// the partition-table build, then returns with the control loop running.
func StartWorkerProcess(g *graph.Graph, cfg Config, opt WorkerOptions) (*WorkerProcess, error) {
	cfg = cfg.Defaults()
	opt = opt.withDefaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: worker graph must be frozen")
	}
	if opt.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator address")
	}
	if opt.Node >= cfg.Workers {
		return nil, fmt.Errorf("cluster: node %d of a %d-worker cluster", opt.Node, cfg.Workers)
	}

	wp := &WorkerProcess{
		g:       g,
		cfg:     cfg,
		opt:     opt,
		stopCh:  make(chan struct{}),
		ctlDone: make(chan struct{}),
		drainOK: make(chan struct{}),
		jobs:    make(map[uint64]*workerJob),
	}
	wp.fingerprint = jobFingerprint(g, "session", cfg)

	nodes := cfg.Workers + 1
	var err error
	wp.net, err = transport.NewRemote(transport.RemoteConfig{
		Nodes:     nodes,
		Local:     -1, // learned from the welcome
		Listen:    opt.Listen,
		Advertise: opt.Advertise,
		Redial:    opt.Redial,
	})
	if err != nil {
		return nil, err
	}

	hello := encodeHello(helloFrame{
		Version:     handshakeVersion,
		Node:        int32(opt.Node),
		Fingerprint: wp.fingerprint,
		Advertise:   wp.net.Addr(),
		Held:        scanHeldEpochs(opt.CheckpointDir, opt.Node),
	})
	reply, err := transport.JoinCluster(opt.Coordinator, hello, 0,
		transport.RedialPolicy{Budget: opt.JoinTimeout}, wp.stopCh)
	if err != nil {
		wp.net.Close()
		return nil, err
	}
	wf, err := decodeWelcome(reply)
	if err != nil {
		wp.net.Close()
		return nil, err
	}
	if !wf.OK {
		wp.net.Close()
		return nil, fmt.Errorf("cluster: join refused: %s", wf.Reason)
	}
	if int(wf.Workers) != cfg.Workers {
		wp.net.Close()
		return nil, fmt.Errorf("cluster: coordinator runs %d workers, this process is configured for %d", wf.Workers, cfg.Workers)
	}
	wp.node = int(wf.Node)
	wp.generation = wf.Generation
	wp.net.SetLocal(wp.node)
	// Stamp every outgoing frame with this process's fencing token; if a
	// later generation ever claims the slot, peers drop our traffic on
	// arrival.
	wp.net.SetGeneration(uint32(wf.Generation))
	for i, addr := range wf.Peers {
		if addr != "" && i != wp.node {
			wp.net.SetPeer(i, addr)
		}
	}
	wp.logf("joined %s as worker %d (generation %d, listening on %s)", opt.Coordinator, wp.node, wp.generation, wp.net.Addr())

	// The assignment is a pure function of (graph, workers, partitioner),
	// so every process computes an identical one; only this node's vertex
	// table is materialized.
	wp.assign, err = cfg.Partitioner.Partition(g, cfg.Workers)
	if err != nil {
		wp.net.Close()
		return nil, fmt.Errorf("cluster: worker partition: %w", err)
	}
	wp.local = buildLocalTable(g, wp.assign, wp.node)

	// Open the control channel before demux starts: the coordinator sends
	// ctrlJobStart for every live job the moment the handshake completes,
	// and those frames may already sit in the network mailbox.
	under := make([]transport.Endpoint, nodes)
	under[wp.node] = wp.net.Endpoint()
	wp.mux = transport.NewMuxPaused(under)
	ctlEps, err := wp.mux.Open(ctrlChannel, nil, nil)
	if err != nil {
		wp.net.Close()
		return nil, err
	}
	wp.ctl = ctlEps[wp.node]
	wp.mux.StartDemux()

	wp.loopWg.Add(2)
	go wp.ctlLoop()
	go wp.heartbeatLoop()
	return wp, nil
}

// scanHeldEpochs lists the checkpoint epochs this process holds local
// snapshot files for, one heldEpochs entry per job subdirectory of root.
// Only a process claiming an explicit slot can name its files (the node
// index is part of the filename); auto-assigned workers send nothing.
func scanHeldEpochs(root string, node int) []heldEpochs {
	if root == "" || node < 0 {
		return nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var held []heldEpochs
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) > maxHeldJobID {
			continue
		}
		epochs := heldEpochsIn(filepath.Join(root, e.Name()), node)
		if len(epochs) == 0 {
			continue
		}
		held = append(held, heldEpochs{JobID: e.Name(), Epochs: epochs})
		if len(held) == maxHeldJobs {
			break
		}
	}
	return held
}

// Node returns the slot the coordinator assigned this process.
func (wp *WorkerProcess) Node() int { return wp.node }

// Generation returns the fencing token the coordinator assigned this
// process at admission.
func (wp *WorkerProcess) Generation() int64 { return wp.generation }

// Addr returns the address peers dial to reach this worker.
func (wp *WorkerProcess) Addr() string { return wp.net.Addr() }

// Done is closed when the control link to the coordinator goes down (the
// coordinator exited, or Close/Kill tore the transport). A worker CLI
// blocks on it to exit alongside its coordinator.
func (wp *WorkerProcess) Done() <-chan struct{} { return wp.ctlDone }

// ctlLoop serves the coordinator's control channel until the transport
// closes.
func (wp *WorkerProcess) ctlLoop() {
	defer wp.loopWg.Done()
	defer close(wp.ctlDone)
	for {
		msg, ok := wp.ctl.Recv()
		if !ok {
			return
		}
		switch msg.Type {
		case ctrlJobStart:
			var m jobStartMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				wp.logf("bad job start: %v", err)
				continue
			}
			wp.startJob(&m)
		case ctrlJobStop:
			var m jobStopMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			wp.mu.Lock()
			wj := wp.jobs[m.Channel]
			wp.mu.Unlock()
			if wj != nil {
				wj.w.stop()
			}
		case ctrlTopology:
			var m topologyMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			for i, addr := range m.Peers {
				if addr != "" && i != wp.node {
					wp.net.SetPeer(i, addr)
				}
			}
			// Raise the transport fencing floor for every peer slot: a
			// zombie predecessor's pull requests and task frames die at
			// this worker's doorstep, not in its engine.
			for i, gen := range m.Gens {
				if i != wp.node && gen > 0 {
					wp.net.FencePeer(i, uint32(gen))
				}
			}
		case ctrlDrainOK:
			var m drainMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			if m.Gen == wp.generation {
				wp.drainOKOnce.Do(func() { close(wp.drainOK) })
			}
		}
	}
}

// heartbeatLoop reports liveness to the coordinator for /healthz and slot
// reclamation. Each beat carries this process's fencing generation (so a
// delayed zombie's beat cannot re-mark a reclaimed slot as joined) and
// its draining state. With HeartbeatChaos set, beats route through the
// fault-injecting endpoint wrapper — drops and delays on this path are
// exactly what the fencing soak exercises.
func (wp *WorkerProcess) heartbeatLoop() {
	defer wp.loopWg.Done()
	ep := wp.ctl
	if wp.opt.HeartbeatChaos != nil {
		ep = wp.opt.HeartbeatChaos.Wrap(ep)
	}
	t := time.NewTicker(wp.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-wp.stopCh:
			return
		case <-t.C:
			hb := encodeCtrl(heartbeatMsg{Gen: wp.generation, Draining: wp.draining.Load()})
			_ = ep.Send(wp.cfg.Workers, ctrlHeartbeat, hb)
		}
	}
}

// csrIndex returns the process-wide CSR index, building it on first use.
// A build failure logs and returns nil, which sends algorithms down their
// generic fallback instead of failing the job.
func (wp *WorkerProcess) csrIndex() *kernels.CSR {
	wp.csrOnce.Do(func() {
		c, err := kernels.Build(wp.g)
		if err != nil {
			wp.logf("CSR index build failed (jobs run generic): %v", err)
			return
		}
		wp.csr = c
	})
	return wp.csr
}

// startJob opens the job's mux channel, builds this node's engine worker —
// restoring from the newest committed epoch the coordinator vouched for,
// when the start message carries resume refs — and runs the job to
// completion on its own goroutine.
func (wp *WorkerProcess) startJob(m *jobStartMsg) {
	wp.mu.Lock()
	if wp.closed || wp.jobs[m.Channel] != nil {
		// Duplicate start (a coordinator retry) or shutdown race: ignore.
		wp.mu.Unlock()
		return
	}
	wp.mu.Unlock()

	spec := m.Spec.Normalize()
	algo, err := jobspec.Build(wp.g, spec)
	if err != nil {
		// The coordinator validated the same spec; disagreeing here means a
		// version skew the handshake should have caught. The job will fail
		// at the coordinator's result timeout.
		wp.logf("job %s: cannot build %q: %v", m.JobID, spec.App, err)
		return
	}
	if kc, ok := algo.(core.KernelConfigurable); ok {
		if spec.Generic || wp.cfg.DisablePlans {
			kc.ConfigureKernels(nil, true)
		} else {
			kc.ConfigureKernels(wp.csrIndex(), false)
		}
	}

	cfg := wp.cfg
	cfg.JobID = m.JobID
	if m.CheckpointEverySeconds > 0 {
		cfg.CheckpointEvery = time.Duration(m.CheckpointEverySeconds * float64(time.Second))
	}
	cfg.CheckpointDir = ""
	if wp.opt.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(wp.opt.CheckpointDir, m.JobID)
	}
	// resume=true keeps existing snapshot files (this is a rejoin after a
	// crash; the refs below vouch for them). A fresh start clears leftovers
	// from any previous job sharing the directory.
	sink, err := newSnapshotSink(cfg.CheckpointDir, cfg.Workers, wp.fingerprint, wp.generation, len(m.Resume) > 0)
	if err != nil {
		wp.logf("job %s: checkpoint sink: %v", m.JobID, err)
		return
	}

	counters := &metrics.Counters{}
	perNode := make([]*metrics.Counters, cfg.Workers+1)
	perNode[wp.node] = counters
	eps, err := wp.mux.Open(m.Channel, perNode, nil)
	if err != nil {
		wp.logf("job %s: open channel %d: %v", m.JobID, m.Channel, err)
		return
	}

	// Restore from the newest committed epoch whose local file verifies
	// against the coordinator's commit-time checksum; fall back across
	// older commits, then to a fresh start (safe: un-checkpointed results
	// died with the old process).
	var w *Worker
	for _, ref := range m.Resume {
		snap, err := sink.loadWith(wp.node, ref.Epoch, ref.CRC)
		if err == nil {
			w, err = newWorker(wp.node, cfg, algo, wp.g, wp.assign, wp.local, eps[wp.node], counters, sink, snap)
		}
		if err != nil {
			wp.logf("job %s: epoch %d restore failed (%v); falling back", m.JobID, ref.Epoch, err)
			w = nil
			continue
		}
		wp.logf("job %s: restored from committed epoch %d", m.JobID, ref.Epoch)
		break
	}
	if w == nil {
		w, err = newWorker(wp.node, cfg, algo, wp.g, wp.assign, wp.local, eps[wp.node], counters, sink, nil)
		if err != nil {
			wp.logf("job %s: worker build: %v", m.JobID, err)
			wp.mux.CloseChannel(m.Channel)
			return
		}
	}

	wj := &workerJob{channel: m.Channel, id: m.JobID, w: w, counters: counters}
	wp.mu.Lock()
	if wp.closed {
		wp.mu.Unlock()
		w.stop()
		w.spiller.Close()
		wp.mux.CloseChannel(m.Channel)
		return
	}
	wp.jobs[m.Channel] = wj
	wp.mu.Unlock()

	w.start()
	wp.jobWg.Add(1)
	go wp.runJob(wj)
}

// runJob waits out one job's pipeline (the engine worker stops itself on
// the master's msgStop broadcast, or on ctrlJobStop), then ships the final
// records and counters to the coordinator and tears the channel down.
func (wp *WorkerProcess) runJob(wj *workerJob) {
	defer wp.jobWg.Done()
	<-wj.w.stopCh
	wj.w.wg.Wait()

	if !wj.w.killed.Load() {
		res := jobResultMsg{
			Channel:  wj.channel,
			JobID:    wj.id,
			Worker:   wp.node,
			Records:  wj.w.takeResults(),
			Counters: wj.counters.Snapshot(),
			Gen:      wp.generation,
		}
		if res.Records == nil {
			res.Records = []string{}
		}
		if err := wj.w.lastCheckpointErr(); err != nil {
			res.CkptErr = err.Error()
		}
		_ = wp.ctl.Send(wp.cfg.Workers, ctrlJobResult, encodeCtrl(res))
	}
	wj.w.spiller.Close()
	wp.mux.CloseChannel(wj.channel)
	wp.mu.Lock()
	delete(wp.jobs, wj.channel)
	wp.mu.Unlock()
}

// Drain performs the graceful-detach protocol (the SIGTERM path of a
// rolling restart): enter the draining state, ask the coordinator to
// force a barrier checkpoint across every live job, and wait until the
// coordinator confirms those epochs committed (ctrlDrainOK). On return
// the caller should Close(); the in-flight work is durable, and a
// replacement process rejoining the slot resumes it from the barrier
// epoch. Returns an error if the coordinator did not release the process
// within the timeout (callers typically Close anyway — SIGTERM is not a
// negotiation — accepting that un-checkpointed progress is redone).
func (wp *WorkerProcess) Drain(timeout time.Duration) error {
	wp.mu.Lock()
	closed := wp.closed
	wp.mu.Unlock()
	if closed {
		return nil
	}
	wp.draining.Store(true)
	wp.logf("draining worker %d (generation %d): requesting barrier checkpoint", wp.node, wp.generation)
	_ = wp.ctl.Send(wp.cfg.Workers, ctrlDrain, encodeCtrl(drainMsg{Gen: wp.generation}))
	select {
	case <-wp.drainOK:
		wp.logf("drain complete: epochs committed, detaching")
		return nil
	case <-wp.ctlDone:
		return fmt.Errorf("cluster: drain: control link to coordinator went down")
	case <-time.After(timeout):
		return fmt.Errorf("cluster: drain: coordinator did not release worker %d within %s", wp.node, timeout)
	}
}

// Draining reports whether the process has entered the draining state.
func (wp *WorkerProcess) Draining() bool { return wp.draining.Load() }

// FencedFrames counts inbound frames this process's transport refused
// because their sender's generation had been fenced out (a zombie
// predecessor of some peer slot).
func (wp *WorkerProcess) FencedFrames() int64 { return wp.net.Fenced() }

// Kill simulates a machine crash for tests: every live engine worker dies
// silently (nothing is flushed or shipped) and the process's transport
// drops off the network, exactly like a SIGKILL'd process.
func (wp *WorkerProcess) Kill() {
	wp.mu.Lock()
	wp.closed = true
	wp.killed = true
	jobs := make([]*workerJob, 0, len(wp.jobs))
	for _, wj := range wp.jobs {
		jobs = append(jobs, wj)
	}
	wp.mu.Unlock()
	for _, wj := range jobs {
		wj.w.kill()
	}
	wp.stopOnce.Do(func() { close(wp.stopCh) })
	wp.mux.Close()
	wp.net.Close()
	wp.mux.WaitDemux()
	wp.jobWg.Wait()
	wp.loopWg.Wait()
}

// Close shuts the worker process down gracefully: live jobs are stopped
// (their partial results still ship if the transport is up), then the
// transport closes.
func (wp *WorkerProcess) Close() {
	wp.mu.Lock()
	if wp.closed {
		wp.mu.Unlock()
		return
	}
	wp.closed = true
	jobs := make([]*workerJob, 0, len(wp.jobs))
	for _, wj := range wp.jobs {
		jobs = append(jobs, wj)
	}
	wp.mu.Unlock()
	for _, wj := range jobs {
		wj.w.stop()
	}
	wp.stopOnce.Do(func() { close(wp.stopCh) })
	// Let runJob goroutines ship results before the transport dies; they
	// finish quickly once their workers stop.
	done := make(chan struct{})
	go func() {
		wp.jobWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	wp.mux.Close()
	wp.net.Close()
	wp.mux.WaitDemux()
	wp.loopWg.Wait()
}

func (wp *WorkerProcess) logf(format string, args ...any) {
	if wp.opt.Logf != nil {
		wp.opt.Logf(format, args...)
	}
}
