package cluster_test

import (
	"testing"
	"time"

	"gminer/internal/chaos"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/partition"
)

// chaosBaseline runs the same job fault-free and returns its sorted
// records. slowMark's output is deterministic, so the baseline is the
// ground truth the chaos runs must reproduce byte for byte.
func chaosBaseline(t *testing.T, cfg cluster.Config, seed int64) []string {
	t.Helper()
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: seed})
	res, err := cluster.Run(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

// TestChaosSoakLossyNetwork runs a real mining job through a network that
// drops, delays, duplicates and reorders messages (no crashes), with task
// stealing on. The result multiset must be byte-identical to the
// fault-free baseline and the job must terminate on its own.
func TestChaosSoakLossyNetwork(t *testing.T) {
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	// Faster pull retries keep the soak short: each dropped pull costs one
	// backoff interval before the retry path re-issues it.
	cfg.PullRetryBase = 10 * time.Millisecond

	want := chaosBaseline(t, cfg, 61)

	profile := chaos.Profile{
		Seed:     0xc4a05,
		Drop:     0.05,
		Delay:    0.20,
		Dup:      0.03,
		Reorder:  0.05,
		DelayMin: 100 * time.Microsecond,
		DelayMax: 1500 * time.Microsecond,
	}
	ctl := chaos.New(profile)
	cfg.Chaos = ctl

	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 61})
	res, err := cluster.Run(g, &slowMark{delay: 100 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := ctl.Stats()
	if stats.Injected() == 0 {
		t.Fatalf("chaos injected nothing: %+v", stats)
	}
	if stats.Drops == 0 {
		t.Fatalf("soak never exercised the drop path: %+v", stats)
	}
	assertSameRecords(t, res.Records, want)
}

// TestChaosSoakWithWorkerCrash is the full §7 scenario: the default chaos
// profile (drops + delays + one worker crash mid-job) against a
// checkpointing cluster with failure detection. The crash is recovered by
// the failure detector; the job must terminate without intervention and
// emit exactly the baseline records.
func TestChaosSoakWithWorkerCrash(t *testing.T) {
	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	cfg.CheckpointEvery = 3 * time.Millisecond
	cfg.CheckpointDir = t.TempDir()
	cfg.FailTimeout = 10 * time.Millisecond
	cfg.PullRetryBase = 10 * time.Millisecond
	// Stealing off: a migration in flight at kill time would be lost — the
	// same hole the paper's checkpoint protocol has (tasks migrated after
	// the victim's checkpoint are in nobody's snapshot).
	cfg.Stealing = false

	want := chaosBaseline(t, cfg, 67)

	ctl := chaos.New(chaos.Default(0xdef0))
	cfg.Chaos = ctl

	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 2500, Seed: 67})
	res, err := cluster.Run(g, &slowMark{delay: 150 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats := ctl.Stats(); stats.Injected() == 0 {
		t.Fatalf("chaos injected nothing: %+v", stats)
	}
	if res.Recovered == 0 {
		t.Fatal("crash window never recovered a worker")
	}
	assertSameRecords(t, res.Records, want)
}

// TestChaosSameSeedSameStats reruns the lossy soak with the same seed and
// expects the same injection decisions — the property that makes chaos
// failures reproducible from a CI log.
func TestChaosSameSeedSameStats(t *testing.T) {
	profile := chaos.Profile{
		Seed:     7,
		Drop:     0.04,
		Delay:    0.10,
		DelayMin: 50 * time.Microsecond,
		DelayMax: 500 * time.Microsecond,
	}
	run := func() chaos.Stats {
		cfg := smallConfig()
		cfg.Partitioner = partition.Hash{}
		cfg.PullRetryBase = 10 * time.Millisecond
		ctl := chaos.New(profile)
		cfg.Chaos = ctl
		g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 1200, Seed: 71})
		if _, err := cluster.Run(g, &slowMark{delay: 50 * time.Microsecond}, cfg); err != nil {
			t.Fatal(err)
		}
		return ctl.Stats()
	}
	a, b := run(), run()
	// Scheduling differences change how many messages each run sends, so
	// exact equality is not guaranteed end-to-end; the per-message decision
	// sequence is, which shows up as both runs injecting faults of every
	// configured kind.
	if a.Injected() == 0 || b.Injected() == 0 {
		t.Fatalf("seeded runs injected nothing: %+v / %+v", a, b)
	}
	if (a.Drops == 0) != (b.Drops == 0) || (a.Delays == 0) != (b.Delays == 0) {
		t.Fatalf("same seed, different fault mix: %+v / %+v", a, b)
	}
}
