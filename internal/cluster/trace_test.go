package cluster_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"gminer/internal/algo"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/trace"
)

// TestTracedRunProducesPhasesAndEvents runs a real job with a fully
// enabled tracer and checks end-to-end wiring: the ring buffers see the
// task lifecycle, the histograms feed Result.Phases, and the Chrome dump
// of the run is loadable JSON.
func TestTracedRunProducesPhasesAndEvents(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 7})
	want := algo.RefTriangles(g)

	cfg := smallConfig()
	tr := trace.New(cfg.Workers+1, 4096).EnableEvents()
	cfg.Tracer = tr
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("tracing changed the answer: got %d want %d", got, want)
	}

	// Every vertex seeds one task; all of them must die.
	if n := tr.EventCount(trace.EvTaskSeed); n == 0 {
		t.Fatal("no task_seed events")
	}
	if seeds, deaths := tr.EventCount(trace.EvTaskSeed), tr.EventCount(trace.EvTaskDead); deaths != seeds {
		t.Fatalf("task_dead = %d, task_seed = %d (every task must complete)", deaths, seeds)
	}
	if tr.EventCount(trace.EvTaskReady) == 0 {
		t.Fatal("no task_ready events")
	}
	// A 3-worker run must pull remote candidates.
	if tr.EventCount(trace.EvPullIssued) == 0 || tr.EventCount(trace.EvPullAnswered) == 0 {
		t.Fatalf("pull events missing: issued=%d answered=%d",
			tr.EventCount(trace.EvPullIssued), tr.EventCount(trace.EvPullAnswered))
	}
	if tr.EventCount(trace.EvCacheHit)+tr.EventCount(trace.EvCacheMiss) == 0 {
		t.Fatal("no cache events")
	}

	if len(res.Phases) == 0 {
		t.Fatal("Result.Phases empty on a traced run")
	}
	byMetric := map[string]trace.PhaseSummary{}
	for _, p := range res.Phases {
		byMetric[p.Metric] = p
	}
	tr2, ok := byMetric["task_round"]
	if !ok {
		t.Fatalf("no task_round phase in %+v", res.Phases)
	}
	if tr2.Count == 0 || tr2.P99 < tr2.P50 || tr2.Component != "executor" {
		t.Fatalf("task_round summary: %+v", tr2)
	}
	if _, ok := byMetric["pull_rtt"]; !ok {
		t.Fatalf("no pull_rtt phase in %+v", res.Phases)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("run trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("run trace has no events")
	}
}

// TestUntracedRunHasNoPhases checks the nil-tracer default stays inert:
// no phases on the result and identical answers.
func TestUntracedRunHasNoPhases(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2000, Seed: 3})
	res, err := cluster.Run(g, algo.NewTriangleCount(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != nil {
		t.Fatalf("untraced run has phases: %+v", res.Phases)
	}
}

// TestTracedStealAndCheckpoint exercises the steal and checkpoint
// instrumentation paths under an event-recording tracer.
func TestTracedStealAndCheckpoint(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 9, Edges: 4000, Seed: 21})
	cfg := smallConfig()
	cfg.Stealing = true
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 5 * 1e6 // 5ms
	tr := trace.New(cfg.Workers+1, 4096).EnableEvents()
	cfg.Tracer = tr
	want := algo.RefTriangles(g)
	res, err := cluster.Run(g, algo.NewTriangleCount(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	// Checkpoints fire on a 5ms interval, so at least one epoch completes
	// on all but the fastest runs; begin/end must pair if any fired.
	begins, ends := tr.EventCount(trace.EvCheckpointBegin), tr.EventCount(trace.EvCheckpointEnd)
	if begins != ends {
		t.Fatalf("checkpoint begin=%d end=%d", begins, ends)
	}
}
