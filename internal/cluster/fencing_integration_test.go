package cluster_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gminer/internal/chaos"
	"gminer/internal/cluster"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/partition"
	"gminer/internal/trace"
)

// fencingSpec is the workload the fencing soaks run: cd emissions are a
// pure function of each task (no global aggregator gate), so replayed or
// re-mined tasks emit exactly what the original would have — the
// byte-identical contract these tests assert.
func fencingSpec() jobspec.Spec {
	return jobspec.Spec{App: "cd", MinSim: 0.4, MinSize: 3}.Normalize()
}

// fencingRef computes the fault-free single-process reference records.
func fencingRef(t *testing.T, g *graph.Graph, sp jobspec.Spec, cfg cluster.Config) []string {
	t.Helper()
	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cluster.Run(g, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Records) == 0 {
		t.Fatal("degenerate reference: no matches")
	}
	return ref.Records
}

// awaitManifest blocks until the job's coordinator MANIFEST exists (the
// first checkpoint epoch committed) or the job finishes first.
func awaitManifest(t *testing.T, j *cluster.Job, coordDir, id string) {
	t.Helper()
	manifest := filepath.Join(coordDir, id, "MANIFEST")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(manifest); err == nil {
			return
		}
		if j.Done() {
			t.Fatal("job finished before a checkpoint committed; enlarge the graph")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint committed within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A replacement claiming a slot whose previous holder is STILL ALIVE must
// fence the predecessor out, not split-brain the job: the zombie's
// heartbeats, progress frames, checkpoint acks and final result are all
// refused, the replacement restores from the committed epoch, and the
// job's records stay byte-identical to a fault-free run.
func TestRemoteZombieFenced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fencing soak")
	}
	g := gen.RMAT(gen.RMATConfig{Scale: 11, Edges: 40000, Seed: 103})
	sp := fencingSpec()
	jobspec.Prepare(g, sp)

	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	cfg.Stealing = false // a migration in flight at fencing time would be lost
	want := fencingRef(t, g, sp, cfg)

	coordDir := t.TempDir()
	workerDir := t.TempDir()
	cfg.CheckpointDir = coordDir
	rs, wps := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{
			FailTimeout:   2 * time.Second,
			ResultTimeout: 240 * time.Second,
		},
		cluster.WorkerOptions{
			HeartbeatEvery: 20 * time.Millisecond,
			CheckpointDir:  workerDir,
		})

	tr := trace.New(cfg.Workers+1, 4096).EnableEvents()
	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rs.Launch(a, cluster.JobOptions{
		ID:              "zombie-fenced",
		Spec:            &sp,
		Tracer:          tr,
		CheckpointEvery: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitManifest(t, j, coordDir, "zombie-fenced")

	// Start a replacement claiming node 1's slot and checkpoint directory
	// WITHOUT killing the original: from the coordinator's welcome onward
	// the original is a zombie — alive, mining, heartbeating — and every
	// frame it sends must die at the transport.
	zombieNode := wps[1].Node()
	replacement, err := cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
		Coordinator:    rs.Addr(),
		Node:           zombieNode,
		CheckpointDir:  filepath.Join(workerDir, fmt.Sprintf("node-%d", zombieNode)),
		HeartbeatEvery: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replacement.Close)
	if replacement.Generation() != 2 {
		t.Fatalf("replacement admitted at generation %d, want 2", replacement.Generation())
	}

	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("records diverge with a zombie on the network: got %d records, want %d",
			len(res.Records), len(want))
	}

	// The zombie is still running (cleanup closes it later): its heartbeats
	// keep arriving at the fenced-out generation. They must be counted as
	// refused, and must not flip the slot's registry entry back.
	deadline := time.Now().Add(10 * time.Second)
	for rs.FencedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fenced frames counted while a zombie heartbeats")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := tr.EventCount(trace.EvFenced); n == 0 {
		t.Fatal("no EvFenced trace events recorded")
	}
	health := rs.WorkerHealth()
	if !health[zombieNode].Joined || health[zombieNode].Generation != 2 {
		t.Fatalf("slot %d after fencing: %+v (want joined at generation 2)", zombieNode, health[zombieNode])
	}
}

// A rolling restart — SIGTERM-drain each worker in sequence, replace it,
// wait for the replacement to rejoin — must lose no progress: every
// drain ends in a committed barrier epoch, every replacement restores
// from it, and the job's records stay byte-identical.
func TestRemoteRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second rolling-restart soak")
	}
	g := gen.RMAT(gen.RMATConfig{Scale: 11, Edges: 40000, Seed: 211})
	sp := fencingSpec()
	jobspec.Prepare(g, sp)

	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	cfg.Stealing = false
	want := fencingRef(t, g, sp, cfg)

	coordDir := t.TempDir()
	workerDir := t.TempDir()
	cfg.CheckpointDir = coordDir
	rs, wps := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{
			FailTimeout:   2 * time.Second,
			ResultTimeout: 240 * time.Second,
		},
		cluster.WorkerOptions{
			HeartbeatEvery: 20 * time.Millisecond,
			CheckpointDir:  workerDir,
		})

	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rs.Launch(a, cluster.JobOptions{
		ID:              "rolling",
		Spec:            &sp,
		CheckpointEvery: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitManifest(t, j, coordDir, "rolling")

	for i, wp := range wps {
		if j.Done() {
			t.Fatalf("job finished before worker %d restarted; enlarge the graph", i)
		}
		if err := wp.Drain(60 * time.Second); err != nil {
			t.Fatalf("worker %d drain: %v", i, err)
		}
		if !wp.Draining() {
			t.Fatalf("worker %d not in draining state after Drain", i)
		}
		wp.Close()
		replacement, err := cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
			Coordinator:    rs.Addr(),
			Node:           i,
			CheckpointDir:  filepath.Join(workerDir, fmt.Sprintf("node-%d", i)),
			HeartbeatEvery: 20 * time.Millisecond,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("worker %d replacement: %v", i, err)
		}
		t.Cleanup(replacement.Close)
		if replacement.Generation() != 2 {
			t.Fatalf("worker %d replacement admitted at generation %d, want 2", i, replacement.Generation())
		}
	}

	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("records diverge after rolling restart: got %d records, want %d",
			len(res.Records), len(want))
	}
	if res.Recovered == 0 {
		t.Fatal("result does not report any recovery")
	}
	for i, st := range rs.WorkerHealth() {
		if !st.Joined || st.Generation != 2 {
			t.Fatalf("slot %d after rolling restart: %+v (want joined at generation 2)", i, st)
		}
	}
}

// Killing the whole cluster — coordinator included — and restarting the
// coordinator with Resume must rebuild the held job from its durable
// JOBSPEC + MANIFEST, wait for the slots to rejoin with their held
// epochs, restore every worker from one consistent committed cut, and
// finish byte-identically.
func TestRemoteCoordinatorResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second coordinator-restart soak")
	}
	g := gen.RMAT(gen.RMATConfig{Scale: 11, Edges: 40000, Seed: 307})
	sp := fencingSpec()
	jobspec.Prepare(g, sp)

	cfg := smallConfig()
	cfg.Partitioner = partition.Hash{}
	cfg.Stealing = false
	want := fencingRef(t, g, sp, cfg)

	coordDir := t.TempDir()
	workerDir := t.TempDir()
	cfg.CheckpointDir = coordDir
	rs, wps := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{
			FailTimeout:   2 * time.Second,
			ResultTimeout: 240 * time.Second,
		},
		cluster.WorkerOptions{
			HeartbeatEvery: 20 * time.Millisecond,
			CheckpointDir:  workerDir,
		})

	a, err := jobspec.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	j, err := rs.Launch(a, cluster.JobOptions{
		ID:              "held-job",
		Spec:            &sp,
		CheckpointEvery: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitManifest(t, j, coordDir, "held-job")
	if j.Done() {
		t.Fatal("job finished before the coordinator restart; enlarge the graph")
	}

	// Full-cluster shutdown: the coordinator goes first (its Close cancels
	// the job attributing coordinator shutdown, which keeps the JOBSPEC on
	// disk), then the worker processes.
	rs.Close()
	for _, wp := range wps {
		wp.Close()
	}

	// Restarted coordinator: same checkpoint directory, Resume on.
	cfg2 := cfg
	cfg2.Resume = true
	rs2, err := cluster.NewRemoteSession(g, cfg2, cluster.RemoteSessionConfig{
		FailTimeout:   2 * time.Second,
		ResultTimeout: 240 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs2.Close)
	held := rs2.HeldJobs()
	if len(held) != 1 || held[0].ID != "held-job" {
		t.Fatalf("held jobs after restart: %+v (want the one launched job)", held)
	}

	// Restarted workers: same slots, same checkpoint directories — their
	// hellos advertise the committed epochs they still hold, and the
	// coordinator pins the resume to the highest epoch all of them share.
	for i := 0; i < cfg.Workers; i++ {
		wp, err := cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
			Coordinator:    rs2.Addr(),
			Node:           i,
			CheckpointDir:  filepath.Join(workerDir, fmt.Sprintf("node-%d", i)),
			HeartbeatEvery: 20 * time.Millisecond,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("worker %d restart: %v", i, err)
		}
		t.Cleanup(wp.Close)
	}
	if err := rs2.WaitReady(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Resubmit under the original ID — what gminerd's -resume path does.
	a2, err := jobspec.Build(g, held[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rs2.Launch(a2, cluster.JobOptions{
		ID:              held[0].ID,
		Spec:            &held[0].Spec,
		CheckpointEvery: time.Duration(held[0].CheckpointEverySeconds * float64(time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("records diverge after coordinator resume: got %d records, want %d",
			len(res.Records), len(want))
	}
}

// The heartbeat-chaos soak: a worker whose heartbeats are mostly dropped
// and otherwise heavily delayed looks dead to the coordinator, which
// reclaims its slot for an auto-assigned replacement. The original is
// ALIVE the whole time — its delayed beats keep trickling in — and must
// be fenced, not split-brained: the refused frames are counted, and the
// slot's registry entry stays with the replacement's generation.
func TestRemoteHeartbeatChaosFenced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second heartbeat-chaos soak")
	}
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2000, Seed: 19})
	cfg := smallConfig()
	cfg.Workers = 2

	coordDir := t.TempDir()
	_ = coordDir
	rs, wps := remoteTestCluster(t, g, cfg,
		cluster.RemoteSessionConfig{FailTimeout: 150 * time.Millisecond},
		cluster.WorkerOptions{HeartbeatEvery: 20 * time.Millisecond})
	// remoteTestCluster cannot thread per-worker options, so rebuild
	// worker 1 with the chaotic heartbeat path: close the healthy one and
	// admit a flaky replacement on its slot (generation 2).
	wps[1].Close()
	flaky, err := cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
		Coordinator:    rs.Addr(),
		Node:           1,
		HeartbeatEvery: 20 * time.Millisecond,
		HeartbeatChaos: chaos.New(chaos.HeartbeatFlaky(42)),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(flaky.Close)
	if flaky.Generation() != 2 {
		t.Fatalf("flaky worker admitted at generation %d, want 2", flaky.Generation())
	}

	// Wait for the flaky slot to look dead: its last accepted heartbeat
	// older than the failure timeout.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := rs.WorkerHealth()[1]
		if time.Since(st.LastSeen) > 150*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flaky worker's heartbeats kept arriving; slot never went stale")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An auto-assigned replacement (Node -1) must reclaim the stale slot.
	// A delayed zombie beat can land between our staleness check and the
	// hello and refresh the slot, so retry until admission succeeds.
	var replacement *cluster.WorkerProcess
	for time.Now().Before(deadline) {
		replacement, err = cluster.StartWorkerProcess(g, cfg, cluster.WorkerOptions{
			Coordinator:    rs.Addr(),
			Node:           -1,
			HeartbeatEvery: 20 * time.Millisecond,
			JoinTimeout:    2 * time.Second,
			Logf:           t.Logf,
		})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("no replacement admitted: %v", err)
	}
	t.Cleanup(replacement.Close)
	if replacement.Node() != 1 {
		t.Fatalf("replacement auto-assigned slot %d, want the stale slot 1", replacement.Node())
	}
	if replacement.Generation() != 3 {
		t.Fatalf("replacement admitted at generation %d, want 3", replacement.Generation())
	}

	// Soak: the zombie stays alive, its delayed beats keep arriving at the
	// fenced-out generation. They must be counted as refused and must
	// never flip the slot's registry entry away from the replacement.
	soakEnd := time.Now().Add(2 * time.Second)
	for time.Now().Before(soakEnd) {
		st := rs.WorkerHealth()[1]
		if st.Generation != 3 {
			t.Fatalf("slot 1 registry moved off the replacement's generation: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for rs.FencedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fenced frames counted while the zombie heartbeats")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := rs.WorkerHealth()[1]
	if !st.Joined || st.Generation != 3 {
		t.Fatalf("slot 1 after soak: %+v (want joined at generation 3)", st)
	}
	select {
	case <-flaky.Done():
		// The zombie's control link may drop once the coordinator redials
		// the slot's new address; the process itself is still running
		// (Close has not been called), which is all the soak needs.
	default:
	}
}
