package cluster

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
)

// White-box tests for the pipeline building blocks and protocol codecs.

func TestTaskQueueFIFO(t *testing.T) {
	q := newTaskQueue()
	for i := uint64(1); i <= 3; i++ {
		q.push(&core.Task{ID: i})
	}
	for i := uint64(1); i <= 3; i++ {
		task, ok := q.pop()
		if !ok || task.ID != i {
			t.Fatalf("pop %d: %v %v", i, task, ok)
		}
	}
}

func TestTaskQueueCloseDrains(t *testing.T) {
	q := newTaskQueue()
	q.push(&core.Task{ID: 1})
	q.close()
	// Close lets consumers drain what was queued, then reports done;
	// pushes after close are dropped.
	if task, ok := q.pop(); !ok || task.ID != 1 {
		t.Fatalf("queued task lost on close: %v %v", task, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop should fail once drained after close")
	}
	q.push(&core.Task{ID: 2})
	if _, ok := q.pop(); ok {
		t.Fatal("push after close should be dropped")
	}
}

func TestTaskQueuePopBlocks(t *testing.T) {
	q := newTaskQueue()
	got := make(chan uint64, 1)
	go func() {
		task, ok := q.pop()
		if ok {
			got <- task.ID
		}
	}()
	select {
	case <-got:
		t.Fatal("pop returned without a task")
	case <-time.After(5 * time.Millisecond):
	}
	q.push(&core.Task{ID: 42})
	select {
	case id := <-got:
		if id != 42 {
			t.Fatalf("id=%d", id)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
}

func TestTaskQueueWaitBelow(t *testing.T) {
	q := newTaskQueue()
	for i := 0; i < 4; i++ {
		q.push(&core.Task{ID: uint64(i)})
	}
	released := make(chan struct{})
	go func() {
		q.waitBelow(3)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("waitBelow returned with 4 >= 3 queued")
	case <-time.After(5 * time.Millisecond):
	}
	q.pop()
	q.pop()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("waitBelow never released")
	}
}

func TestTaskBufferBatching(t *testing.T) {
	b := newTaskBuffer(3)
	if out := b.add(&core.Task{ID: 1}); out != nil {
		t.Fatal("premature flush")
	}
	if out := b.add(&core.Task{ID: 2}); out != nil {
		t.Fatal("premature flush")
	}
	out := b.add(&core.Task{ID: 3})
	if len(out) != 3 {
		t.Fatalf("flush len=%d", len(out))
	}
	if b.len() != 0 {
		t.Fatal("buffer not emptied")
	}
	b.add(&core.Task{ID: 4})
	if got := b.drain(); len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("drain: %v", got)
	}
}

func TestProgressCodec(t *testing.T) {
	p := &progressReport{
		Worker: 3, Inflight: 10, StoreSize: 7, TasksSent: 2, TasksRecv: 5,
		Activity: 99, SeedsDone: true, Results: 4,
		AggSet: true, AggBytes: []byte{1, 2, 3},
	}
	got, err := decodeProgress(encodeProgress(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("got %+v want %+v", got, p)
	}
}

func TestProgressCodecNoAgg(t *testing.T) {
	p := &progressReport{Worker: 1, Inflight: 5}
	got, err := decodeProgress(encodeProgress(p))
	if err != nil || got.AggSet || got.AggBytes != nil {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestPullCodecs(t *testing.T) {
	ids := []graph.VertexID{5, 1, 900}
	got, err := decodePullReq(encodePullReq(ids))
	if err != nil || !reflect.DeepEqual(got, ids) {
		t.Fatalf("req: %v %v", got, err)
	}

	found := []*graph.Vertex{
		{ID: 1, Label: 2, Adj: []graph.VertexID{5, 9}},
		{ID: 5, Label: graph.NoLabel},
	}
	missing := []graph.VertexID{900}
	entries, err := decodePullResp(encodePullResp(found, missing))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries=%d", len(entries))
	}
	if !entries[0].Present || entries[0].V.ID != 1 || len(entries[0].V.Adj) != 2 {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[2].Present || entries[2].ID != 900 {
		t.Fatalf("tombstone: %+v", entries[2])
	}
}

func TestTasksCodec(t *testing.T) {
	t1 := &core.Task{ID: 1, Round: 2}
	t1.Subgraph.AddVertices(1, 2)
	t1.Cands = []graph.VertexID{3}
	t2 := &core.Task{ID: 2}
	t2.Subgraph.AddVertex(9)
	got, err := decodeTasks(encodeTasks([]*core.Task{t1, t2}, core.NoContext{}), core.NoContext{})
	if err != nil || len(got) != 2 {
		t.Fatalf("%v %v", got, err)
	}
	if got[0].ID != 1 || got[0].Round != 2 || got[0].Subgraph.Len() != 2 {
		t.Fatalf("task 1: %+v", got[0])
	}
}

func TestMigrateCodec(t *testing.T) {
	thief, tnum, err := decodeMigrate(encodeMigrate(7, 32))
	if err != nil || thief != 7 || tnum != 32 {
		t.Fatalf("%d %d %v", thief, tnum, err)
	}
}

func TestEpochCodec(t *testing.T) {
	e, err := decodeEpoch(encodeEpoch(12345))
	if err != nil || e != 12345 {
		t.Fatalf("%d %v", e, err)
	}
}

func TestSnapshotCodec(t *testing.T) {
	s := &workerSnapshot{
		Epoch: 3, SeedCursor: 77, SeedsDone: true,
		TaskBytes: []byte{9, 9, 9},
		Results:   []string{"a", "b"},
		AggBytes:  []byte{4},
	}
	got, err := decodeSnapshot(encodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("got %+v want %+v", got, s)
	}
}

func TestSnapshotSinkMemoryAndDisk(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		sink, err := newSnapshotSink(dir, 1, 42, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if snap, err := sink.get(0); err != nil || snap != nil {
			t.Fatalf("empty sink: %v %v", snap, err)
		}
		// An uncommitted epoch is invisible to restore.
		want := &workerSnapshot{Epoch: 1, SeedCursor: 5, TaskBytes: []byte{}, Results: []string{}}
		crc1, err := sink.put(0, 1, encodeSnapshot(want))
		if err != nil {
			t.Fatal(err)
		}
		if snap, err := sink.get(0); err != nil || snap != nil {
			t.Fatalf("dir=%q: uncommitted epoch visible: %+v %v", dir, snap, err)
		}
		if err := sink.commit(1, []uint32{crc1}, nil); err != nil {
			t.Fatal(err)
		}
		got, err := sink.get(0)
		if err != nil || got == nil || got.Epoch != 1 || got.SeedCursor != 5 {
			t.Fatalf("dir=%q: got %+v err %v", dir, got, err)
		}
		// A newer committed epoch wins.
		want2 := &workerSnapshot{Epoch: 2, TaskBytes: []byte{}, Results: []string{}}
		crc2, err := sink.put(0, 2, encodeSnapshot(want2))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.commit(2, []uint32{crc2}, nil); err != nil {
			t.Fatal(err)
		}
		got, _ = sink.get(0)
		if got == nil || got.Epoch != 2 {
			t.Fatalf("dir=%q: stale snapshot %+v", dir, got)
		}
		if want := []int64{2, 1}; !reflect.DeepEqual(sink.committedEpochs(), want) {
			t.Fatalf("dir=%q: committed epochs %v, want %v", dir, sink.committedEpochs(), want)
		}
	}
}

func TestCostPolicy(t *testing.T) {
	p := CostPolicy{Tc: 100, Tr: 0.5}
	small := &core.Task{Cands: make([]graph.VertexID, 10)}
	small.ToPull = small.Cands // lr = 0
	if !p.Eligible(small) {
		t.Fatal("small remote task should migrate")
	}
	big := &core.Task{Cands: make([]graph.VertexID, 200)}
	big.ToPull = big.Cands
	if p.Eligible(big) {
		t.Fatal("big task should stay")
	}
	localTask := &core.Task{Cands: make([]graph.VertexID, 10)} // lr = 1
	if p.Eligible(localTask) {
		t.Fatal("local-heavy task should stay")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Workers <= 0 || c.Threads <= 0 || c.CacheCapacity <= 0 ||
		c.StoreMemCapacity <= 0 || c.LSHDims <= 0 || c.StealBatch <= 0 ||
		c.ProgressInterval <= 0 || c.Partitioner == nil ||
		c.MaxPendingPulls <= 0 || c.CPQHighWater <= 0 || c.BufferFlush <= 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	// Pipeline windows scale with the cache.
	small := Config{CacheCapacity: 64}.Defaults()
	if small.MaxPendingPulls > 64 {
		t.Fatalf("pending window %d not scaled to cache 64", small.MaxPendingPulls)
	}
}

func TestTaskBufferConcurrent(t *testing.T) {
	b := newTaskBuffer(8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if out := b.add(&core.Task{}); out != nil {
					mu.Lock()
					total += len(out)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	total += len(b.drain())
	if total != 400 {
		t.Fatalf("lost tasks: %d", total)
	}
}
