package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/kernels"
	"gminer/internal/memctl"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/trace"
	"gminer/internal/transport"
)

// Session is a warm cluster serving many mining jobs over one resident
// graph. The costs a one-shot run pays per query — loading the graph,
// BDG-partitioning it, building every worker's vertex table — are paid
// once at session start; each Launch then reuses the partition assignment,
// the shared read-only vertex tables and one multiplexed transport, so a
// job's startup cost is only its own pipeline state (task store, RCV
// cache, queues). The paper's task model makes jobs independent sets of
// tasks (§4.1–4.2), so concurrent jobs never share mutable state: each
// gets its own mux channel (job-scoped wire envelope), store, cache,
// counters, checkpoints and tracer.
type Session struct {
	g      *graph.Graph
	cfg    Config
	assign *partition.Assignment
	locals []*localTable
	// csr is the degree-ranked adjacency index compiled execution plans run
	// on, built once at session start (like the partition and the vertex
	// tables) and shared read-only by every job. Nil when the session
	// config disables plans.
	csr *kernels.CSR

	net *transport.LocalNetwork
	mux *transport.Mux

	partitionTime time.Duration

	mu     sync.Mutex
	jobs   map[string]*Job
	nextCh uint64
	closed bool
}

// NewSession partitions the frozen graph once and brings the shared
// transport up. The config is the template every job inherits (workers,
// threads, cache sizes, stealing, ...); per-job knobs are set at Launch.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	cfg = cfg.Defaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: session graph must be frozen")
	}
	if cfg.UseTCP {
		return nil, fmt.Errorf("cluster: sessions run over the in-process transport (TCP sessions are not supported yet)")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("cluster: sessions do not support chaos injection (crash schedules target a per-job network)")
	}
	if cfg.Resume {
		return nil, fmt.Errorf("cluster: sessions cannot resume (resume a job, not the session)")
	}

	s := &Session{g: g, cfg: cfg, jobs: make(map[string]*Job)}

	pStart := time.Now()
	assign, err := cfg.Partitioner.Partition(g, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: session partition: %w", err)
	}
	s.partitionTime = time.Since(pStart)
	s.assign = assign

	s.locals = make([]*localTable, cfg.Workers)
	for i := range s.locals {
		s.locals[i] = buildLocalTable(g, assign, i)
	}

	if !cfg.DisablePlans {
		s.csr, err = kernels.Build(g)
		if err != nil {
			return nil, fmt.Errorf("cluster: session CSR index: %w", err)
		}
	}

	nodes := cfg.Workers + 1
	// Per-job byte accounting happens at the mux endpoints, so the shared
	// network carries no counters or tracer of its own.
	s.net = transport.NewLocal(transport.LocalConfig{
		Nodes:        nodes,
		Latency:      cfg.Latency,
		BandwidthBps: cfg.BandwidthBps,
	})
	under := make([]transport.Endpoint, nodes)
	for i := range under {
		under[i] = s.net.Endpoint(i)
	}
	s.mux = transport.NewMux(under)
	return s, nil
}

// JobOptions are the per-job knobs of Session.Launch.
type JobOptions struct {
	// ID names the job; it namespaces spill/checkpoint directories and
	// metrics labels. Empty picks "job-<n>". IDs of live jobs must be
	// unique; a finished job's ID may be reused.
	ID string
	// Tracer, if non-nil, records this job's pipeline events and latency
	// histograms (create with trace.New(Workers+1, ...)).
	Tracer *trace.Tracer
	// MemBudgetBytes bounds the job-owned memory (task store + RCV cache
	// summed over workers). 0 means unlimited. Exceeding it cancels the
	// job with an error wrapping memctl.ErrOOM.
	MemBudgetBytes int64
	// CheckpointEvery overrides the template's checkpoint interval for
	// this job; 0 inherits it.
	CheckpointEvery time.Duration
	// RoundHook, if non-nil, is called by the job's master once per
	// scheduling round (see Config.RoundHook). The serving layer's QoS
	// enforcement point: budget and deadline checks run here so a job is
	// only ever stopped at a round boundary.
	RoundHook func(round int64)
	// Spec is the job's normalized workload spec. A RemoteSession requires
	// it — worker processes rebuild the algorithm from the spec, since
	// core.Algorithm values cannot cross a process boundary. A local
	// Session ignores it.
	Spec *jobspec.Spec
}

// Launch starts one mining job on the warm cluster and returns its handle.
// The caller collects the result with Job.Wait (which also releases the
// job's mux channel) and may Cancel it at any time without disturbing
// co-resident jobs.
func (s *Session) Launch(a core.Algorithm, opt JobOptions) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: session closed")
	}
	s.nextCh++
	ch := s.nextCh
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", ch)
	}
	if _, live := s.jobs[id]; live {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: job id %q already running", id)
	}
	// Reserve the ID before dropping the lock so concurrent Launches with
	// the same explicit ID cannot both proceed.
	s.jobs[id] = nil
	s.mu.Unlock()

	cfg := s.cfg
	cfg.JobID = id
	cfg.Tracer = opt.Tracer
	cfg.RoundHook = opt.RoundHook
	if opt.Spec != nil && opt.Spec.Generic {
		// Spec-requested differential baseline: this job runs generic even
		// though the session holds a warm CSR index.
		cfg.DisablePlans = true
	}
	if opt.MemBudgetBytes > 0 {
		cfg.MemBudget = memctl.NewBudget(opt.MemBudgetBytes)
	}
	if opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opt.CheckpointEvery
	}
	if cfg.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(cfg.CheckpointDir, id)
	}

	nodes := cfg.Workers + 1
	counters := make([]*metrics.Counters, nodes)
	for i := range counters {
		counters[i] = &metrics.Counters{}
	}
	eps, err := s.mux.Open(ch, counters, cfg.Tracer)
	if err != nil {
		s.forget(id)
		return nil, err
	}

	env := &launchEnv{
		assign:        s.assign,
		partitionTime: s.partitionTime,
		locals:        s.locals,
		endpoints:     eps,
		counters:      counters,
		csr:           s.csr,
		release: func() {
			s.mux.CloseChannel(ch)
			s.forget(id)
		},
	}
	j, err := startWithEnv(s.g, a, cfg, env)
	if err != nil {
		s.mux.CloseChannel(ch)
		s.forget(id)
		return nil, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	return j, nil
}

func (s *Session) forget(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// ActiveJobs returns the number of jobs launched and not yet fully torn
// down (a job leaves the count at the end of its Wait).
func (s *Session) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Graph returns the resident graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Config returns the session's template config (with defaults applied).
func (s *Session) Config() Config { return s.cfg }

// PartitionTime is the one-time static partitioning cost every job
// amortizes.
func (s *Session) PartitionTime() time.Duration { return s.partitionTime }

// EdgeCut is the partitioning edge-cut fraction of the resident
// assignment.
func (s *Session) EdgeCut() float64 { return s.assign.EdgeCut(s.g) }

// Fingerprint identifies the resident graph plus the session topology
// (worker count, partitioner) — everything that, beyond the workload
// spec itself, determines a job's output. The serving layer's result
// cache keys on it so entries die with the graph they were computed on.
func (s *Session) Fingerprint() uint64 { return jobFingerprint(s.g, "session", s.cfg) }

// DroppedMessages counts stale wire messages the mux discarded (traffic
// addressed to already-torn-down jobs).
func (s *Session) DroppedMessages() int64 { return s.mux.Dropped() }

// Close cancels any jobs still running, waits for their teardown, and
// shuts the shared transport down. The session refuses Launches from the
// moment Close begins.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j != nil {
			live = append(live, j)
		}
	}
	s.mu.Unlock()

	for _, j := range live {
		j.Cancel()
	}
	for _, j := range live {
		_, _ = j.Wait()
	}
	s.mux.Close()
	s.net.Close()
	s.mux.WaitDemux()
}
