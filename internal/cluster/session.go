package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/core"
	"gminer/internal/dyngraph"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/kernels"
	"gminer/internal/memctl"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/trace"
	"gminer/internal/transport"
)

// Session is a warm cluster serving many mining jobs over one resident
// graph. The costs a one-shot run pays per query — loading the graph,
// BDG-partitioning it, building every worker's vertex table — are paid
// once at session start; each Launch then reuses the partition assignment,
// the shared read-only vertex tables and one multiplexed transport, so a
// job's startup cost is only its own pipeline state (task store, RCV
// cache, queues). The paper's task model makes jobs independent sets of
// tasks (§4.1–4.2), so concurrent jobs never share mutable state: each
// gets its own mux channel (job-scoped wire envelope), store, cache,
// counters, checkpoints and tracer.
type Session struct {
	g      *graph.Graph
	cfg    Config
	assign *partition.Assignment
	locals []*localTable
	// csr is the degree-ranked adjacency index compiled execution plans run
	// on, built once at session start (like the partition and the vertex
	// tables) and shared read-only by every job. Nil when the session
	// config disables plans. On a dynamic session it is rebuilt lazily:
	// the first Launch after a mutation epoch pays for it.
	csr *kernels.CSR

	net *transport.LocalNetwork
	mux *transport.Mux

	partitionTime time.Duration

	// Dynamic-session state (nil dyn on a static session). epochMu is the
	// graph-epoch lock: every job holds the read side from Launch until
	// the end of its Wait teardown, and ApplyMutations takes the write
	// side — so a mutation batch applies only when no job is touching the
	// shared graph, assignment or local tables, and jobs always observe a
	// whole epoch. epoch mirrors dyn.Epoch() for lock-free reads
	// (/healthz, /metrics).
	epochMu  sync.RWMutex
	dyn      *dyngraph.State
	epoch    atomic.Int64
	csrEpoch int64 // epoch s.csr was built at (guarded by mu)

	mu     sync.Mutex
	jobs   map[string]*Job
	nextCh uint64
	closed bool
}

// NewSession partitions the frozen graph once and brings the shared
// transport up. The config is the template every job inherits (workers,
// threads, cache sizes, stealing, ...); per-job knobs are set at Launch.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	cfg = cfg.Defaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: session graph must be frozen")
	}
	if cfg.UseTCP {
		return nil, fmt.Errorf("cluster: sessions run over the in-process transport (TCP sessions are not supported yet)")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("cluster: sessions do not support chaos injection (crash schedules target a per-job network)")
	}
	if cfg.Resume {
		return nil, fmt.Errorf("cluster: sessions cannot resume (resume a job, not the session)")
	}

	s := &Session{g: g, cfg: cfg, jobs: make(map[string]*Job)}

	pStart := time.Now()
	var assign *partition.Assignment
	if cfg.Dynamic {
		blocked, ok := cfg.Partitioner.(partition.Blocked)
		if !ok {
			return nil, fmt.Errorf("cluster: dynamic sessions require the blocked partitioner, not %q", cfg.Partitioner.Name())
		}
		st, err := dyngraph.NewState(g, cfg.Workers, blocked.Shift)
		if err != nil {
			return nil, fmt.Errorf("cluster: session partition: %w", err)
		}
		s.dyn = st
		assign = st.Assignment()
	} else {
		a, err := cfg.Partitioner.Partition(g, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("cluster: session partition: %w", err)
		}
		assign = a
	}
	s.partitionTime = time.Since(pStart)
	s.assign = assign

	s.locals = make([]*localTable, cfg.Workers)
	for i := range s.locals {
		s.locals[i] = buildLocalTable(g, assign, i)
	}

	if !cfg.DisablePlans {
		csr, err := kernels.Build(g)
		if err != nil {
			return nil, fmt.Errorf("cluster: session CSR index: %w", err)
		}
		s.csr = csr
	}

	nodes := cfg.Workers + 1
	// Per-job byte accounting happens at the mux endpoints, so the shared
	// network carries no counters or tracer of its own.
	s.net = transport.NewLocal(transport.LocalConfig{
		Nodes:        nodes,
		Latency:      cfg.Latency,
		BandwidthBps: cfg.BandwidthBps,
	})
	under := make([]transport.Endpoint, nodes)
	for i := range under {
		under[i] = s.net.Endpoint(i)
	}
	s.mux = transport.NewMux(under)
	return s, nil
}

// JobOptions are the per-job knobs of Session.Launch.
type JobOptions struct {
	// ID names the job; it namespaces spill/checkpoint directories and
	// metrics labels. Empty picks "job-<n>". IDs of live jobs must be
	// unique; a finished job's ID may be reused.
	ID string
	// Tracer, if non-nil, records this job's pipeline events and latency
	// histograms (create with trace.New(Workers+1, ...)).
	Tracer *trace.Tracer
	// MemBudgetBytes bounds the job-owned memory (task store + RCV cache
	// summed over workers). 0 means unlimited. Exceeding it cancels the
	// job with an error wrapping memctl.ErrOOM.
	MemBudgetBytes int64
	// CheckpointEvery overrides the template's checkpoint interval for
	// this job; 0 inherits it.
	CheckpointEvery time.Duration
	// RoundHook, if non-nil, is called by the job's master once per
	// scheduling round (see Config.RoundHook). The serving layer's QoS
	// enforcement point: budget and deadline checks run here so a job is
	// only ever stopped at a round boundary.
	RoundHook func(round int64)
	// Spec is the job's normalized workload spec. A RemoteSession requires
	// it — worker processes rebuild the algorithm from the spec, since
	// core.Algorithm values cannot cross a process boundary. A local
	// Session ignores it.
	Spec *jobspec.Spec
}

// Launch starts one mining job on the warm cluster and returns its handle.
// The caller collects the result with Job.Wait (which also releases the
// job's mux channel) and may Cancel it at any time without disturbing
// co-resident jobs.
func (s *Session) Launch(a core.Algorithm, opt JobOptions) (*Job, error) {
	// Take the job's graph-epoch read lease first: from here until the end
	// of the job's Wait teardown the resident graph cannot mutate under
	// it. On a static session the lock is never contended.
	s.epochMu.RLock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.epochMu.RUnlock()
		return nil, fmt.Errorf("cluster: session closed")
	}
	s.nextCh++
	ch := s.nextCh
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", ch)
	}
	if _, live := s.jobs[id]; live {
		s.mu.Unlock()
		s.epochMu.RUnlock()
		return nil, fmt.Errorf("cluster: job id %q already running", id)
	}
	// Reserve the ID before dropping the lock so concurrent Launches with
	// the same explicit ID cannot both proceed.
	s.jobs[id] = nil
	s.mu.Unlock()

	csr, err := s.ensureCSR()
	if err != nil {
		s.forget(id)
		s.epochMu.RUnlock()
		return nil, err
	}

	cfg := s.cfg
	cfg.JobID = id
	cfg.GraphEpoch = s.epoch.Load()
	cfg.Tracer = opt.Tracer
	cfg.RoundHook = opt.RoundHook
	if opt.Spec != nil && opt.Spec.Generic {
		// Spec-requested differential baseline: this job runs generic even
		// though the session holds a warm CSR index.
		cfg.DisablePlans = true
	}
	if opt.MemBudgetBytes > 0 {
		cfg.MemBudget = memctl.NewBudget(opt.MemBudgetBytes)
	}
	if opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opt.CheckpointEvery
	}
	if cfg.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(cfg.CheckpointDir, id)
	}

	nodes := cfg.Workers + 1
	counters := make([]*metrics.Counters, nodes)
	for i := range counters {
		counters[i] = &metrics.Counters{}
	}
	eps, err := s.mux.Open(ch, counters, cfg.Tracer)
	if err != nil {
		s.forget(id)
		s.epochMu.RUnlock()
		return nil, err
	}

	env := &launchEnv{
		assign:        s.assign,
		partitionTime: s.partitionTime,
		locals:        s.locals,
		endpoints:     eps,
		counters:      counters,
		csr:           csr,
		release: func() {
			s.mux.CloseChannel(ch)
			s.forget(id)
		},
		retire: s.epochMu.RUnlock,
	}
	j, err := startWithEnv(s.g, a, cfg, env)
	if err != nil {
		s.mux.CloseChannel(ch)
		s.forget(id)
		s.epochMu.RUnlock()
		return nil, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	return j, nil
}

func (s *Session) forget(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// ActiveJobs returns the number of jobs launched and not yet fully torn
// down (a job leaves the count at the end of its Wait).
func (s *Session) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Graph returns the resident graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Config returns the session's template config (with defaults applied).
func (s *Session) Config() Config { return s.cfg }

// PartitionTime is the one-time static partitioning cost every job
// amortizes.
func (s *Session) PartitionTime() time.Duration { return s.partitionTime }

// EdgeCut is the partitioning edge-cut fraction of the resident
// assignment.
func (s *Session) EdgeCut() float64 {
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	return s.assign.EdgeCut(s.g)
}

// Fingerprint identifies the resident graph plus the session topology
// (worker count, partitioner) — everything that, beyond the workload
// spec itself, determines a job's output. The serving layer's result
// cache keys on it so entries die with the graph they were computed on;
// on a dynamic session the current graph epoch folds in too.
func (s *Session) Fingerprint() uint64 {
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	cfg := s.cfg
	cfg.GraphEpoch = s.epoch.Load()
	return jobFingerprint(s.g, "session", cfg)
}

// Dynamic reports whether the session accepts mutations.
func (s *Session) Dynamic() bool { return s.dyn != nil }

// GraphEpoch returns the current graph epoch (0 = the loaded snapshot;
// always 0 on a static session). Lock-free, safe from any goroutine.
func (s *Session) GraphEpoch() int64 { return s.epoch.Load() }

// WithGraphRead runs fn while holding a graph-epoch read lease: the
// resident graph cannot mutate during fn. Control-plane reads of the
// graph (spec validation against it, stats for health endpoints) go
// through here on serving daemons; jobs get the same protection
// implicitly from Launch.
func (s *Session) WithGraphRead(fn func()) {
	s.epochMu.RLock()
	defer s.epochMu.RUnlock()
	fn()
}

// ensureCSR returns the CSR index for the current epoch, rebuilding it
// if mutations landed since it was last compiled. Callers hold the
// epoch read lease, so the epoch cannot advance during the rebuild.
func (s *Session) ensureCSR() (*kernels.CSR, error) {
	if s.cfg.DisablePlans {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dyn == nil {
		return s.csr, nil
	}
	if ep := s.epoch.Load(); s.csr == nil || s.csrEpoch != ep {
		csr, err := kernels.Build(s.g)
		if err != nil {
			return nil, fmt.Errorf("cluster: session CSR rebuild: %w", err)
		}
		s.csr, s.csrEpoch = csr, ep
	}
	return s.csr, nil
}

// EpochResult reports what one applied mutation batch changed.
type EpochResult struct {
	// Epoch is the graph epoch after the batch.
	Epoch int64
	// Stats is what the batch did to the graph.
	Stats dyngraph.ApplyStats
	// DirtyBlocks is the number of partition blocks containing a
	// structurally-changed vertex; MovedBlocks counts blocks whose owner
	// changed under re-placement.
	DirtyBlocks int
	MovedBlocks int
	// RebuiltWorkers lists the workers whose local vertex tables were
	// migrated (rebuilt); the other workers' tables were provably
	// untouched by the batch and survive as-is.
	RebuiltWorkers []int
	// ApplyTime is the wall time of the whole epoch apply (mutation +
	// incremental re-placement + table migration), excluding any wait for
	// running jobs to finish.
	ApplyTime time.Duration
}

// ApplyMutations applies one batch to the resident graph, advancing the
// graph epoch. It blocks until every running job has finished (jobs hold
// epoch read leases), then mutates the graph in place, incrementally
// re-places the partition blocks, and rebuilds only the local tables of
// workers the batch actually touched. The CSR index is not rebuilt here —
// the next Launch pays for it lazily.
func (s *Session) ApplyMutations(b dyngraph.Batch) (*EpochResult, error) {
	if s.dyn == nil {
		return nil, fmt.Errorf("cluster: session is not dynamic (enable Config.Dynamic)")
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("cluster: session closed")
	}
	start := time.Now()
	info, err := s.dyn.Apply(s.g, b)
	if err != nil {
		return nil, err
	}
	s.assign = s.dyn.Assignment()
	var rebuilt []int
	for w, dirty := range info.DirtyWorkers {
		if dirty {
			s.locals[w] = buildLocalTable(s.g, s.assign, w)
			rebuilt = append(rebuilt, w)
		}
	}
	s.epoch.Store(info.Epoch)
	return &EpochResult{
		Epoch:          info.Epoch,
		Stats:          info.Stats,
		DirtyBlocks:    info.DirtyBlocks,
		MovedBlocks:    info.MovedBlocks,
		RebuiltWorkers: rebuilt,
		ApplyTime:      time.Since(start),
	}, nil
}

// DroppedMessages counts stale wire messages the mux discarded (traffic
// addressed to already-torn-down jobs).
func (s *Session) DroppedMessages() int64 { return s.mux.Dropped() }

// Close cancels any jobs still running, waits for their teardown, and
// shuts the shared transport down. The session refuses Launches from the
// moment Close begins.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j != nil {
			live = append(live, j)
		}
	}
	s.mu.Unlock()

	for _, j := range live {
		j.Cancel()
	}
	for _, j := range live {
		_, _ = j.Wait()
	}
	s.mux.Close()
	s.net.Close()
	s.mux.WaitDemux()
}
