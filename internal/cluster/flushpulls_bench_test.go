package cluster

import (
	"testing"
	"time"

	"gminer/internal/algo"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/transport"
)

// discardEndpoint swallows sends so flush benchmarks measure the encode
// path, not mailbox growth.
type discardEndpoint struct{ transport.Endpoint }

func (discardEndpoint) Send(int, uint8, []byte) error { return nil }

// newBenchWorker builds a worker over a small 4-partition graph without
// starting its goroutines.
func newBenchWorker(tb testing.TB) *Worker {
	tb.Helper()
	g := gen.RMAT(gen.RMATConfig{Scale: 8, Edges: 2000, Seed: 17})
	cfg := Config{Workers: 4, Threads: 1, ProgressInterval: time.Millisecond}.Defaults()
	assign, err := partition.Hash{}.Partition(g, 4)
	if err != nil {
		tb.Fatal(err)
	}
	net := transport.NewLocal(transport.LocalConfig{Nodes: 5})
	tb.Cleanup(func() { net.Close() })
	w, err := newWorker(0, cfg, algo.NewTriangleCount(), g, assign, nil, net.Endpoint(0),
		&metrics.Counters{}, nil, nil)
	if err != nil {
		tb.Fatal(err)
	}
	w.ep = discardEndpoint{}
	return w
}

// BenchmarkFlushPulls measures the retriever's pull-request flush: 64
// vertex IDs batched toward 3 remote owners per flush, the steady-state
// shape dispatch produces. The batch map, its per-owner slices and the
// encode buffers are all recycled, so allocs/op stays near zero where
// the old implementation paid a fresh map, fresh slices and a growing
// wire.Writer per flush.
func BenchmarkFlushPulls(b *testing.B) {
	w := newBenchWorker(b)
	fill := func() {
		w.pendMu.Lock()
		for i := 0; i < 64; i++ {
			owner := 1 + i%3 // remote owners only
			id := graph.VertexID(1000 + i)
			w.pullBatch[owner] = append(w.pullBatch[owner], id)
			w.pullCount++
		}
		w.pendMu.Unlock()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		w.flushPulls()
	}
}

// BenchmarkFlushPullsBaseline is the pre-optimization shape of the same
// flush — fresh map, fresh per-owner slices, fresh encode buffer — kept
// as the comparison point for the alloc drop cmd/bench records.
func BenchmarkFlushPullsBaseline(b *testing.B) {
	w := newBenchWorker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make(map[int][]graph.VertexID)
		for j := 0; j < 64; j++ {
			owner := 1 + j%3
			batch[owner] = append(batch[owner], graph.VertexID(1000+j))
		}
		for owner, ids := range batch {
			_ = w.ep.Send(owner, msgPullReq, encodePullReq(ids))
		}
	}
}
