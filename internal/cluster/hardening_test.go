package cluster

import (
	"fmt"
	"testing"
	"time"

	"gminer/internal/core"
	"gminer/internal/gen"
	"gminer/internal/graph"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/spill"
	"gminer/internal/store"
	"gminer/internal/transport"
)

// TestRetryStalePullsReresolvesOwner registers an overdue pull whose
// cached owner snapshot is wrong (points at the master node) and checks
// the retry is sent to the vertex's actual owner. Before the fix,
// retryStalePulls resent to the stale ps.owner forever, so a pull issued
// just before a failover could never complete.
func TestRetryStalePullsReresolvesOwner(t *testing.T) {
	w, g, net := newTestWorker(t)
	var remote graph.VertexID = -1
	g.ForEach(func(v *graph.Vertex) bool {
		if w.assign.Owner(v.ID) == 1 {
			remote = v.ID
			return false
		}
		return true
	})
	if remote < 0 {
		t.Skip("degenerate partition")
	}
	w.pendMu.Lock()
	w.pulls[remote] = &pullState{owner: 2 /* wrong: the master node */}
	w.pendMu.Unlock()

	w.retryStalePulls()

	msg, ok := net.Endpoint(1).RecvTimeout(time.Second)
	if !ok || msg.Type != msgPullReq {
		t.Fatalf("no retried pull at the true owner: %+v ok=%v", msg, ok)
	}
	ids, err := decodePullReq(msg.Payload)
	if err != nil || len(ids) != 1 || ids[0] != remote {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	if _, stray := net.Endpoint(2).RecvTimeout(10 * time.Millisecond); stray {
		t.Fatal("retry also sent to the stale owner")
	}
	w.pendMu.Lock()
	ps := w.pulls[remote]
	if ps.owner != 1 || ps.attempts != 1 || !ps.retryAt.After(time.Now()) {
		t.Fatalf("retry state not updated: %+v", ps)
	}
	w.pendMu.Unlock()
}

// TestRetryDelayBacksOffAndCaps checks the exponential growth, the
// PullRetryMax cap and the ±25%% jitter envelope.
func TestRetryDelayBacksOffAndCaps(t *testing.T) {
	w, _, _ := newTestWorker(t)
	base, max := w.cfg.PullRetryBase, w.cfg.PullRetryMax
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	for i := 0; i < 50; i++ {
		if d := w.retryDelay(0); d < base*3/4 || d > base*5/4 {
			t.Fatalf("retryDelay(0) = %v outside [%v, %v]", d, base*3/4, base*5/4)
		}
		if d := w.retryDelay(1000); d < max*3/4 || d > max*5/4 {
			t.Fatalf("retryDelay(1000) = %v outside [%v, %v]", d, max*3/4, max*5/4)
		}
	}
	jittered := false
	first := w.retryDelay(2)
	for i := 0; i < 20 && !jittered; i++ {
		jittered = w.retryDelay(2) != first
	}
	if !jittered {
		t.Fatal("retryDelay shows no jitter")
	}
}

// markAlgo runs one update round per task, emits a record naming the task
// and dies. The sleep keeps tasks in the store long enough for a MIGRATE
// to race the restore below.
type markAlgo struct{ core.NoContext }

func (*markAlgo) Name() string                                 { return "mark" }
func (*markAlgo) Seed(v *graph.Vertex, spawn func(*core.Task)) {}
func (*markAlgo) Update(t *core.Task, cands []*graph.Vertex, env core.Env) {
	time.Sleep(500 * time.Microsecond)
	env.Emit(fmt.Sprintf("t %d", t.ID))
}

// takeAll admits every task to migration (CostPolicy would refuse
// all-local tasks, whose locality rate is 1).
type takeAll struct{}

func (takeAll) Eligible(*core.Task) bool { return true }

// TestRestoreVsMigrateRace delivers a MIGRATE order into a worker's
// mailbox before the worker is rebuilt from a checkpoint, so the steal
// executes while/just after applySnapshot repopulates the task store —
// the window a recovering victim actually hits, since the master keeps
// scheduling steals for it. Every restored task must run exactly once:
// either locally (a record) or shipped to the thief (msgTasks), never
// both, never zero.
func TestRestoreVsMigrateRace(t *testing.T) {
	g := gen.RMAT(gen.RMATConfig{Scale: 6, Edges: 300, Seed: 9})
	algo := &markAlgo{}
	cfg := Config{
		Workers:          2,
		Threads:          2,
		ProgressInterval: time.Millisecond,
		StealBatch:       8,
		StealPolicy:      takeAll{},
	}.Defaults()
	assign, err := partition.Hash{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Build the snapshot the worker will restore: one all-local task per
	// worker-0 vertex, serialized through a real task store.
	var want []uint64
	var tasks []*core.Task
	for i, vid := range assign.Local(g, 0) {
		task := &core.Task{ID: uint64(i + 1), Cands: []graph.VertexID{vid}}
		task.Subgraph.AddVertex(vid)
		tasks = append(tasks, task)
		want = append(want, task.ID)
	}
	if len(tasks) < 8 {
		t.Skip("degenerate partition")
	}
	sp, err := spill.New("", &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(store.Config{MemCapacity: 256, BlockCapacity: 64}, algo, sp, &metrics.Counters{})
	if err := st.Insert(tasks); err != nil {
		t.Fatal(err)
	}
	taskBytes, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := &workerSnapshot{Epoch: 1, SeedsDone: true, TaskBytes: taskBytes}

	net := transport.NewLocal(transport.LocalConfig{Nodes: 3})
	// The racing MIGRATE: queued before the worker exists, handled the
	// moment its comm loop starts, while the restored tasks drain.
	if err := net.Endpoint(2).Send(0, msgMigrate, encodeMigrate(1, cfg.StealBatch)); err != nil {
		t.Fatal(err)
	}

	w, err := newWorker(0, cfg, algo, g, assign, nil, net.Endpoint(0), &metrics.Counters{}, nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	w.start()
	deadline := time.Now().Add(10 * time.Second)
	for w.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tasks stuck: inflight=%d store=%d", w.inflight.Load(), w.store.Size())
		}
		time.Sleep(time.Millisecond)
	}
	// Drain the thief's mailbox before tearing the network down (close
	// discards queued messages).
	var thiefMsgs []transport.Message
	for {
		msg, ok := net.Endpoint(1).RecvTimeout(100 * time.Millisecond)
		if !ok {
			break
		}
		thiefMsgs = append(thiefMsgs, msg)
	}
	w.stop()
	net.Close()
	w.wg.Wait()
	w.spiller.Close()

	// Reconstruct the fate of every task.
	seen := make(map[uint64]int)
	local := w.takeResults()
	for _, rec := range local {
		var id uint64
		if _, err := fmt.Sscanf(rec, "t %d", &id); err != nil {
			t.Fatalf("bad record %q", rec)
		}
		seen[id]++
	}
	shipped := 0
	for _, msg := range thiefMsgs {
		if msg.Type != msgTasks {
			continue
		}
		got, err := decodeTasks(msg.Payload, algo)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range got {
			seen[task.ID]++
			shipped++
		}
	}
	if shipped == 0 {
		t.Log("warning: migrate lost the race; only the local path was exercised")
	}
	if len(seen) != len(want) {
		t.Fatalf("task count: got %d (local %d + shipped %d) want %d",
			len(seen), len(local), shipped, len(want))
	}
	for _, id := range want {
		if seen[id] != 1 {
			t.Fatalf("task %d handled %d times", id, seen[id])
		}
	}
}
