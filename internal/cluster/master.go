package cluster

import (
	"sync/atomic"
	"time"

	"gminer/internal/core"
	"gminer/internal/metrics"
	"gminer/internal/trace"
	"gminer/internal/transport"
	"gminer/internal/wire"
)

// master coordinates the job (§5.1, Figure 4): it maintains the global
// progress table from worker reports, schedules task stealing (progress
// scheduler), merges and broadcasts aggregator values, triggers periodic
// checkpoints, detects failures and decides termination.
type master struct {
	cfg      Config
	ep       transport.Endpoint
	agg      core.Aggregator // nil if the algorithm has none
	counters *metrics.Counters

	reports  []*progressReport
	lastSeen []time.Time
	partials [][]byte // latest encoded aggregator partial per worker

	// termination detection state
	stableRounds int
	lastPrint    []int64 // activity fingerprint of the previous round
	recovered    bool    // a failure happened: sent/recv sums may never match

	// checkpoint state
	epoch        int64
	ckptPending  int
	ckptAcks     map[int]uint32 // worker → snapshot CRC acked for m.epoch
	ackGens      map[int]int64  // worker → fencing generation the ack arrived with
	sink         *snapshotSink  // commits epochs to the MANIFEST; may be nil in tests
	ckptErr      error          // last commit failure, surfaced on cluster.Result
	lastCkpt     time.Time
	lastAggBytes []byte

	// fence is the cluster's fencing-token ledger (nil in single-process
	// mode): acks from a fenced-out generation are dropped before they can
	// count toward a commit.
	fence   *fenceTable
	trFence trace.Handle

	// barrier, when set, forces a checkpoint on the next periodic() pass
	// regardless of the interval clock. A draining worker raises it (via
	// the coordinator) so its state is committed before it detaches.
	barrier atomic.Bool

	failed   map[int]bool
	failures chan<- int

	doneCh chan struct{}
	stopCh chan struct{}
}

func newMaster(cfg Config, ep transport.Endpoint, agg core.Aggregator,
	counters *metrics.Counters, failures chan<- int, sink *snapshotSink, fence *fenceTable) *master {
	m := &master{
		cfg:      cfg,
		ep:       ep,
		agg:      agg,
		counters: counters,
		reports:  make([]*progressReport, cfg.Workers),
		lastSeen: make([]time.Time, cfg.Workers),
		partials: make([][]byte, cfg.Workers),
		ckptAcks: make(map[int]uint32),
		ackGens:  make(map[int]int64),
		sink:     sink,
		fence:    fence,
		trFence:  cfg.Tracer.Handle(cfg.Workers, trace.CompCheckpoint),
		failed:   make(map[int]bool),
		failures: failures,
		doneCh:   make(chan struct{}),
		stopCh:   make(chan struct{}),
		lastCkpt: time.Now(),
	}
	// Start the silence clock at job launch so a worker that dies before
	// its first report is still detected; zero lastSeen would make such a
	// worker invisible to the failure detector forever.
	now := time.Now()
	for i := range m.lastSeen {
		m.lastSeen[i] = now
	}
	return m
}

// run is the master's main loop; it returns once the job has terminated
// (doneCh closed) or the master is stopped externally.
func (m *master) run() {
	defer close(m.doneCh)
	tick := m.cfg.ProgressInterval
	var round int64
	for {
		select {
		case <-m.stopCh:
			// External stop (cancellation, timeout): tell the workers too,
			// so their pipelines drain immediately instead of spinning
			// until the caller's Wait tears them down.
			m.broadcast(msgStop, nil)
			return
		default:
		}
		if msg, ok := m.ep.RecvTimeout(tick); ok {
			m.handle(msg)
			// Drain whatever else is queued before doing periodic work.
			for {
				msg, ok := m.ep.RecvTimeout(0)
				if !ok {
					break
				}
				m.handle(msg)
			}
		}
		m.periodic()
		round++
		if m.cfg.RoundHook != nil {
			m.cfg.RoundHook(round)
		}
		if m.checkTermination() {
			m.broadcast(msgStop, nil)
			return
		}
	}
}

func (m *master) handle(msg transport.Message) {
	switch msg.Type {
	case msgProgress:
		p, err := decodeProgress(msg.Payload)
		if err != nil || p.Worker < 0 || p.Worker >= m.cfg.Workers {
			return
		}
		m.reports[p.Worker] = p
		m.lastSeen[p.Worker] = time.Now()
		if m.failed[p.Worker] {
			delete(m.failed, p.Worker)
		}
		if p.AggSet {
			m.partials[p.Worker] = p.AggBytes
		}
	case msgStealReq:
		m.scheduleSteal(msg.From)
	case msgCheckpointDone:
		m.handleCkptAck(msg)
	}
}

// handleCkptAck collects per-worker checkpoint acks and commits the epoch
// to the MANIFEST once every worker acked. An epoch with any failed or
// silent worker never commits: commit means "all K files are durable",
// which is exactly what restore needs for a consistent cut.
func (m *master) handleCkptAck(msg transport.Message) {
	ack, err := decodeCkptAck(msg.Payload)
	if err != nil || ack.Epoch != m.epoch || m.ckptPending == 0 {
		return // stale ack from an abandoned or superseded epoch
	}
	if msg.From < 0 || msg.From >= m.cfg.Workers {
		return
	}
	if m.fence.stale(msg.From, ack.Gen) {
		// A zombie's ack: its slot has been claimed by a later generation.
		// Dropping it here (and re-checking in sink.commit) keeps a fenced
		// process from ever vouching for an epoch.
		m.trFence.Event(trace.EvFenced, uint64(ack.Gen)<<8|uint64(msgCheckpointDone))
		return
	}
	if _, dup := m.ckptAcks[msg.From]; dup {
		return // chaos duplication: count each worker once
	}
	if !ack.OK {
		// The worker could not snapshot or persist; the epoch can never
		// complete, so abandon it now rather than wait out the timeout.
		m.ckptPending = 0
		return
	}
	m.ckptAcks[msg.From] = ack.CRC
	m.ackGens[msg.From] = ack.Gen
	m.ckptPending--
	if m.ckptPending > 0 || len(m.ckptAcks) != m.cfg.Workers {
		return
	}
	crcs := make([]uint32, m.cfg.Workers)
	gens := make([]int64, m.cfg.Workers)
	for w, crc := range m.ckptAcks {
		crcs[w] = crc
		gens[w] = m.ackGens[w]
	}
	if m.sink != nil {
		if err := m.sink.commit(m.epoch, crcs, gens); err != nil {
			m.ckptErr = err
		}
	}
}

// scheduleSteal picks the most heavily loaded worker (largest task-store
// backlog in the progress table) and orders it to migrate Tnum tasks to
// the requesting idle worker (§6.2).
func (m *master) scheduleSteal(thief int) {
	if !m.cfg.Stealing || m.ckptPending > 0 {
		return
	}
	victim, best := -1, int64(0)
	for i, r := range m.reports {
		if r == nil || i == thief || m.failed[i] {
			continue
		}
		if r.StoreSize > best {
			victim, best = i, r.StoreSize
		}
	}
	if victim < 0 || best == 0 {
		_ = m.ep.Send(thief, msgNoTask, nil)
		return
	}
	_ = m.ep.Send(victim, msgMigrate, encodeMigrate(thief, m.cfg.StealBatch))
}

// periodic runs aggregator sync, checkpoint triggering and failure
// detection.
func (m *master) periodic() {
	// Aggregator: merge the latest partials and broadcast when changed.
	if m.agg != nil {
		merged := m.agg.Zero()
		for _, pb := range m.partials {
			if pb == nil {
				continue
			}
			v := m.agg.Decode(wire.NewReader(pb))
			merged = m.agg.Merge(merged, v)
		}
		w := wire.NewWriter(32)
		m.agg.Encode(w, merged)
		if string(w.Bytes()) != string(m.lastAggBytes) {
			m.lastAggBytes = append([]byte(nil), w.Bytes()...)
			m.broadcast(msgAggGlobal, w.Bytes())
		}
	}

	// Checkpointing.
	if m.cfg.CheckpointEvery > 0 {
		if m.ckptPending > 0 {
			// Abandon an epoch whose acks never arrive (a worker died
			// mid-checkpoint); the next epoch will supersede it.
			limit := 5 * m.cfg.CheckpointEvery
			if limit < 250*time.Millisecond {
				limit = 250 * time.Millisecond
			}
			if time.Since(m.lastCkpt) > limit {
				m.ckptPending = 0
			}
		}
		if m.ckptPending == 0 && (time.Since(m.lastCkpt) >= m.cfg.CheckpointEvery || m.barrier.Load()) {
			m.barrier.Store(false)
			m.epoch++
			// Workers already marked dead will never ack; do not wait on
			// them or the epoch stalls until the abandon timeout. (Such an
			// epoch is incomplete by construction and will not commit.)
			m.ckptPending = m.cfg.Workers - len(m.failed)
			m.ckptAcks = make(map[int]uint32)
			m.ackGens = make(map[int]int64)
			m.lastCkpt = time.Now()
			m.broadcast(msgCheckpointReq, encodeEpoch(m.epoch))
		}
	}

	// Failure detection.
	if m.cfg.FailTimeout > 0 {
		now := time.Now()
		for i := 0; i < m.cfg.Workers; i++ {
			if m.failed[i] || m.lastSeen[i].IsZero() {
				continue
			}
			if now.Sub(m.lastSeen[i]) > m.cfg.FailTimeout {
				m.failed[i] = true
				m.recovered = true
				m.stableRounds = 0
				// A dead worker's checkpoint ack will never arrive: abandon
				// the in-flight epoch now instead of letting it freeze task
				// stealing and termination until the ack timeout expires.
				m.ckptPending = 0
				if m.failures != nil {
					select {
					case m.failures <- i:
					default:
					}
				}
			}
		}
	}
}

// requestBarrier asks the master to trigger a checkpoint on its next
// periodic pass regardless of the interval clock. Safe from any
// goroutine. A no-op when the job runs with checkpointing disabled
// (CheckpointEvery == 0): there is no manifest to commit to, and the
// caller must not wait on one.
func (m *master) requestBarrier() {
	m.barrier.Store(true)
}

// committedEpoch returns the newest committed epoch, or noEpoch when
// nothing has committed (or the job has no sink).
func (m *master) committedEpoch() int64 {
	if m.sink == nil {
		return noEpoch
	}
	if man := m.sink.manifestView(); man != nil {
		return man.Epoch
	}
	return noEpoch
}

// checkTermination applies the stability-based quiescence test: every
// worker idle (seeds done, no alive tasks), migration counters balanced,
// and the per-worker activity fingerprint unchanged across several
// consecutive rounds. The fingerprint window covers in-flight task
// messages: any late delivery bumps a worker's activity counter and resets
// the window.
func (m *master) checkTermination() bool {
	if m.ckptPending > 0 {
		return false
	}
	var sent, recv int64
	print := make([]int64, m.cfg.Workers)
	for i, r := range m.reports {
		if r == nil || m.failed[i] {
			m.stableRounds = 0
			m.lastPrint = nil
			return false
		}
		if !r.SeedsDone || r.Inflight != 0 {
			m.stableRounds = 0
			m.lastPrint = nil
			return false
		}
		sent += r.TasksSent
		recv += r.TasksRecv
		print[i] = r.Activity
	}
	if sent != recv && !m.recovered {
		m.stableRounds = 0
		m.lastPrint = nil
		return false
	}
	if m.lastPrint != nil && equalInt64(print, m.lastPrint) {
		m.stableRounds++
	} else {
		m.stableRounds = 1
	}
	m.lastPrint = print
	// Widen the stability window when the simulated network is slow so an
	// in-flight migration cannot slip past the quiescence check. Chaos
	// delay/reorder holds are invisible to the transport's latency model,
	// so they widen the window the same way.
	need := 3
	if m.cfg.Latency > 0 {
		extra := int(m.cfg.Latency/m.cfg.ProgressInterval)*2 + 1
		need += extra
	}
	if d := m.cfg.Chaos.MaxDelay(); d > 0 {
		need += int(d/m.cfg.ProgressInterval)*2 + 1
	}
	return m.stableRounds >= need
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *master) broadcast(typ uint8, payload []byte) {
	for i := 0; i < m.cfg.Workers; i++ {
		_ = m.ep.Send(i, typ, payload)
	}
}

// globalAgg returns the final merged aggregator value.
func (m *master) globalAgg() any {
	if m.agg == nil {
		return nil
	}
	merged := m.agg.Zero()
	for _, pb := range m.partials {
		if pb == nil {
			continue
		}
		merged = m.agg.Merge(merged, m.agg.Decode(wire.NewReader(pb)))
	}
	return merged
}

func (m *master) stop() {
	select {
	case <-m.stopCh:
	default:
		close(m.stopCh)
	}
}
