package cluster

import (
	"math"
	"sync/atomic"

	"gminer/internal/core"
)

// StealPolicy decides which inactive tasks may migrate during task
// stealing (§6.2). The paper's fixed-threshold cost model is the default;
// §9 names "improving its cost model for task stealing" as future work,
// which AdaptiveCostPolicy implements.
type StealPolicy interface {
	// Eligible reports whether t may be migrated to another worker.
	Eligible(t *core.Task) bool
}

// TaskObserver is implemented by policies that learn from completed
// tasks; the runtime feeds it every finished task's migration cost.
type TaskObserver interface {
	ObserveCompleted(cost int)
}

// CostPolicy is the paper's Eq. 2/3 model: migrate t iff
// c(t) = |subG| + |cand| < Tc and lr(t) < Tr.
type CostPolicy struct {
	Tc int
	Tr float64
}

// Eligible implements StealPolicy.
func (p CostPolicy) Eligible(t *core.Task) bool {
	return t.CostC() < p.Tc && t.LocalRate() < p.Tr
}

// AdaptiveCostPolicy replaces the fixed Tc with a learned bound: it
// tracks an exponentially weighted moving average of completed-task cost
// and admits tasks up to Headroom× that average. Workloads with uniformly
// small tasks migrate freely; workloads that grow huge subgraphs keep
// them local — without hand-tuning Tc per application.
type AdaptiveCostPolicy struct {
	// Tr is the locality threshold, as in Eq. 3.
	Tr float64
	// Headroom multiplies the average cost (default 4).
	Headroom float64
	// InitialTc bounds migration before any task completes (default 4096).
	InitialTc int

	ewmaMilli atomic.Int64 // cost EWMA ×1000
	seen      atomic.Int64
}

// NewAdaptiveCostPolicy returns an adaptive policy with defaults filled.
func NewAdaptiveCostPolicy(tr float64) *AdaptiveCostPolicy {
	if tr <= 0 {
		tr = 0.9
	}
	return &AdaptiveCostPolicy{Tr: tr, Headroom: 4, InitialTc: 4096}
}

// ObserveCompleted implements TaskObserver.
func (p *AdaptiveCostPolicy) ObserveCompleted(cost int) {
	p.seen.Add(1)
	const alphaMilli = 100 // EWMA α = 0.1
	for {
		old := p.ewmaMilli.Load()
		var next int64
		if old == 0 {
			next = int64(cost) * 1000
		} else {
			next = old + (int64(cost)*1000-old)*alphaMilli/1000
		}
		if p.ewmaMilli.CompareAndSwap(old, next) {
			return
		}
	}
}

// Eligible implements StealPolicy.
func (p *AdaptiveCostPolicy) Eligible(t *core.Task) bool {
	if t.LocalRate() >= p.Tr {
		return false
	}
	if p.seen.Load() < 16 {
		tc := p.InitialTc
		if tc <= 0 {
			tc = 4096
		}
		return t.CostC() < tc
	}
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = 4
	}
	bound := headroom * float64(p.ewmaMilli.Load()) / 1000
	return float64(t.CostC()) < math.Max(bound, 16)
}
