package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/transport"
)

// RemoteSessionConfig configures the coordinator side of a multi-process
// cluster.
type RemoteSessionConfig struct {
	// Listen is the coordinator's TCP listen address ("127.0.0.1:0" for an
	// ephemeral port).
	Listen string
	// Advertise is the address worker processes are told to dial; defaults
	// to the bound listen address.
	Advertise string
	// FailTimeout marks a worker process failed after this much silence
	// during a job (the engine's failure detector). Default 2s.
	FailTimeout time.Duration
	// ResultTimeout bounds how long a finished job waits for every worker
	// process to ship its final records. Default 60s.
	ResultTimeout time.Duration
	// Redial is the dial retry budget for coordinator → worker traffic.
	// The zero value inherits the transport default (10s): long enough to
	// bridge a worker-process restart.
	Redial transport.RedialPolicy
	// Logf, if non-nil, receives coordinator lifecycle lines (joins,
	// losses, rejections).
	Logf func(format string, args ...any)
}

func (c RemoteSessionConfig) withDefaults() RemoteSessionConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 2 * time.Second
	}
	if c.ResultTimeout <= 0 {
		c.ResultTimeout = 60 * time.Second
	}
	return c
}

// WorkerStatus is one worker slot's view in the coordinator's registry,
// exposed to the serving layer's health endpoint.
type WorkerStatus struct {
	Node     int       `json:"node"`
	Joined   bool      `json:"joined"`
	Addr     string    `json:"addr,omitempty"`
	LastSeen time.Time `json:"-"`
	// Generation counts how many times the slot was (re)claimed; >1 means
	// a replacement process took over after a loss.
	Generation int `json:"generation,omitempty"`
}

// workerSlot is the coordinator's registry entry for one worker node.
type workerSlot struct {
	addr       string
	joined     bool
	lastSeen   time.Time
	generation int
}

// remoteJobMeta is what the coordinator must remember about a live job to
// (re)start it on a worker process: the spec the worker rebuilds the
// algorithm from, and the job whose sink manifest names the committed
// epochs a rejoining worker may restore.
type remoteJobMeta struct {
	channel   uint64
	id        string
	spec      jobspec.Spec
	ckptEvery time.Duration
	job       *Job
}

// RemoteSession is the multi-process sibling of Session: the same
// serve-many-jobs surface (Launch, ActiveJobs, Close, fingerprint, ...)
// with the K engine workers living in other OS processes. The coordinator
// owns admission (the join handshake), the job registry, the checkpoint
// MANIFEST and every job's master; worker processes own the partition
// tables, the task pipelines and the checkpoint payload files.
//
// Determinism is preserved across the process split: the partition
// assignment is a pure function of (graph, workers, partitioner) computed
// identically on every process, task IDs are worker-scoped, and the final
// record set is sorted after the per-worker results are merged — so a
// job's records are byte-identical to the same job on a single-process
// Session.
type RemoteSession struct {
	g    *graph.Graph
	cfg  Config
	rcfg RemoteSessionConfig

	assign        *partition.Assignment
	partitionTime time.Duration
	fingerprint   uint64

	net *transport.RemoteNetwork
	mux *transport.Mux
	ctl transport.Endpoint

	readyOnce sync.Once
	readyCh   chan struct{}

	mu      sync.Mutex
	slots   []workerSlot
	jobs    map[string]*Job
	byCh    map[uint64]*remoteJobMeta
	nextCh  uint64
	closed  bool
	ctlDone chan struct{}
}

// NewRemoteSession starts the coordinator: it partitions the graph (for
// the fingerprint, edge-cut reporting and job masters), binds the cluster
// listener and begins admitting worker processes. Jobs may be launched
// immediately; their masters' traffic to not-yet-joined workers queues in
// the transport until the worker dials in (WaitReady avoids that warm-up).
func NewRemoteSession(g *graph.Graph, cfg Config, rcfg RemoteSessionConfig) (*RemoteSession, error) {
	cfg = cfg.Defaults()
	rcfg = rcfg.withDefaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: session graph must be frozen")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("cluster: remote sessions do not support chaos injection")
	}
	if cfg.Resume {
		return nil, fmt.Errorf("cluster: remote sessions cannot resume (workers restore at rejoin)")
	}

	s := &RemoteSession{
		g:       g,
		cfg:     cfg,
		rcfg:    rcfg,
		readyCh: make(chan struct{}),
		slots:   make([]workerSlot, cfg.Workers),
		jobs:    make(map[string]*Job),
		byCh:    make(map[uint64]*remoteJobMeta),
		ctlDone: make(chan struct{}),
	}

	pStart := time.Now()
	assign, err := cfg.Partitioner.Partition(g, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: session partition: %w", err)
	}
	s.partitionTime = time.Since(pStart)
	s.assign = assign
	s.fingerprint = jobFingerprint(g, "session", cfg)

	nodes := cfg.Workers + 1
	s.net, err = transport.NewRemote(transport.RemoteConfig{
		Nodes:     nodes,
		Local:     cfg.Workers, // the coordinator holds the master slot K
		Listen:    rcfg.Listen,
		Advertise: rcfg.Advertise,
		Redial:    rcfg.Redial,
		Hello:     s.handleHello,
	})
	if err != nil {
		return nil, err
	}
	under := make([]transport.Endpoint, nodes)
	under[cfg.Workers] = s.net.Endpoint()
	s.mux = transport.NewMuxPaused(under)
	ctlEps, err := s.mux.Open(ctrlChannel, nil, nil)
	if err != nil {
		s.net.Close()
		return nil, err
	}
	s.ctl = ctlEps[cfg.Workers]
	s.mux.StartDemux()
	go s.ctlLoop()
	return s, nil
}

// handleHello is the admission gate, invoked by the transport for every
// FrameHello received on an accepted connection. It decodes and validates
// the worker's join request, assigns (or re-assigns) a node slot, installs
// the peer address, rebroadcasts the topology, and re-starts every live
// job on the joiner — the epoch-fallback rejoin path a replacement process
// takes after a crash.
func (s *RemoteSession) handleHello(payload []byte) []byte {
	reject := func(reason string) []byte {
		s.logf("join rejected: %s", reason)
		return encodeWelcome(welcomeFrame{OK: false, Reason: reason})
	}
	h, err := decodeHello(payload)
	if err != nil {
		return reject(err.Error())
	}
	if err := validateHello(h, s.fingerprint, s.cfg.Workers); err != nil {
		return reject(err.Error())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return reject("cluster: coordinator shutting down")
	}
	slot := int(h.Node)
	if slot < 0 {
		slot = s.pickSlotLocked()
	}
	if slot < 0 {
		s.mu.Unlock()
		return reject(fmt.Sprintf("cluster: all %d worker slots joined and live", s.cfg.Workers))
	}
	st := &s.slots[slot]
	rejoin := st.generation > 0
	st.addr = h.Advertise
	st.joined = true
	st.lastSeen = time.Now()
	st.generation++
	generation := st.generation
	s.net.SetPeer(slot, h.Advertise)

	peers := s.peerTableLocked()
	allJoined := true
	for i := range s.slots {
		if !s.slots[i].joined {
			allJoined = false
			break
		}
	}
	// Snapshot the live jobs so the (re)start messages go out after the
	// lock drops: encodeCtrl and manifest walks need no registry state.
	restarts := make([]*remoteJobMeta, 0, len(s.byCh))
	for _, meta := range s.byCh {
		restarts = append(restarts, meta)
	}
	s.mu.Unlock()

	s.logf("worker %d joined from %s (generation %d)", slot, h.Advertise, generation)
	s.broadcastTopology(peers)
	for _, meta := range restarts {
		s.sendJobStart(slot, meta, true)
		if rejoin {
			meta.job.noteRecovered()
		}
	}
	if allJoined {
		s.readyOnce.Do(func() { close(s.readyCh) })
	}
	return encodeWelcome(welcomeFrame{
		OK:      true,
		Node:    int32(slot),
		Workers: int32(s.cfg.Workers),
		Peers:   peers,
	})
}

// pickSlotLocked auto-assigns a slot: the first never/no-longer-joined
// one, else the stalest joined slot whose silence exceeds the failure
// timeout (its process is presumed dead), else -1. Caller holds s.mu.
func (s *RemoteSession) pickSlotLocked() int {
	for i := range s.slots {
		if !s.slots[i].joined {
			return i
		}
	}
	stalest, age := -1, s.rcfg.FailTimeout
	for i := range s.slots {
		if since := time.Since(s.slots[i].lastSeen); since > age {
			stalest, age = i, since
		}
	}
	return stalest
}

// peerTableLocked builds the dial-address table: workers 0..K-1, the
// coordinator at K. Caller holds s.mu.
func (s *RemoteSession) peerTableLocked() []string {
	peers := make([]string, s.cfg.Workers+1)
	for i := range s.slots {
		if s.slots[i].joined {
			peers[i] = s.slots[i].addr
		}
	}
	peers[s.cfg.Workers] = s.net.Addr()
	return peers
}

// broadcastTopology tells every joined worker the current peer table, so
// live workers learn a replacement's address and sever their stale
// connections to the dead process.
func (s *RemoteSession) broadcastTopology(peers []string) {
	payload := encodeCtrl(topologyMsg{Peers: peers})
	for i, addr := range peers[:s.cfg.Workers] {
		if addr != "" {
			_ = s.ctl.Send(i, ctrlTopology, payload)
		}
	}
}

// sendJobStart (re)starts one job on one worker process. With resume set,
// the message carries the committed (epoch, crc) pairs for that worker
// from the job's MANIFEST — the coordinator is its sole owner — newest
// first, so the rejoining process restores the newest epoch whose local
// snapshot file verifies and falls back across older commits.
func (s *RemoteSession) sendJobStart(node int, meta *remoteJobMeta, resume bool) {
	m := jobStartMsg{
		Channel:                meta.channel,
		JobID:                  meta.id,
		Spec:                   meta.spec,
		CheckpointEverySeconds: meta.ckptEvery.Seconds(),
	}
	if resume {
		if man := meta.job.sink.manifestView(); man != nil {
			for _, epoch := range man.epochs() {
				crcs := man.crcsFor(epoch)
				if node < len(crcs) {
					m.Resume = append(m.Resume, resumeEpochRef{Epoch: epoch, CRC: crcs[node]})
				}
			}
		}
	}
	_ = s.ctl.Send(node, ctrlJobStart, encodeCtrl(m))
}

// ctlLoop routes worker → coordinator control traffic: final job results
// to the owning job's collector, heartbeats to the health registry.
func (s *RemoteSession) ctlLoop() {
	defer close(s.ctlDone)
	for {
		msg, ok := s.ctl.Recv()
		if !ok {
			return
		}
		switch msg.Type {
		case ctrlJobResult:
			var m jobResultMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			s.mu.Lock()
			meta := s.byCh[m.Channel]
			s.mu.Unlock()
			if meta != nil && meta.job.remote != nil {
				meta.job.remote.deliver(&m)
			}
		case ctrlHeartbeat:
			s.mu.Lock()
			if msg.From >= 0 && msg.From < len(s.slots) {
				s.slots[msg.From].lastSeen = time.Now()
				// A heartbeat proves the process behind the slot's address is
				// alive; re-mark a slot the failure detector gave up on.
				s.slots[msg.From].joined = true
			}
			s.mu.Unlock()
		}
	}
}

// watchFailures marks worker slots the job's failure detector flagged as
// lost, so /healthz degrades and the slot becomes claimable by an
// auto-assigned replacement.
func (s *RemoteSession) watchFailures(j *Job) {
	for {
		select {
		case <-j.master.doneCh:
			return
		case i := <-j.failures:
			s.mu.Lock()
			if i >= 0 && i < len(s.slots) && time.Since(s.slots[i].lastSeen) > s.rcfg.FailTimeout {
				s.slots[i].joined = false
				s.mu.Unlock()
				s.logf("worker %d lost (silent past %s); awaiting replacement", i, s.rcfg.FailTimeout)
				continue
			}
			s.mu.Unlock()
		}
	}
}

// WaitReady blocks until every worker slot has joined (or the timeout
// passes). Launching before ready works — early master traffic queues in
// the transport — but a serving daemon should gate its HTTP listener on
// readiness so the first job doesn't pay the join latency.
func (s *RemoteSession) WaitReady(timeout time.Duration) error {
	select {
	case <-s.readyCh:
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	missing := make([]int, 0, len(s.slots))
	for i := range s.slots {
		if !s.slots[i].joined {
			missing = append(missing, i)
		}
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	return fmt.Errorf("cluster: workers %v have not joined within %s", missing, timeout)
}

// Ready reports whether every worker slot is currently joined.
func (s *RemoteSession) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.slots {
		if !s.slots[i].joined {
			return false
		}
	}
	return true
}

// WorkerHealth returns the per-slot join/liveness view for /healthz.
func (s *RemoteSession) WorkerHealth() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, len(s.slots))
	for i := range s.slots {
		out[i] = WorkerStatus{
			Node:       i,
			Joined:     s.slots[i].joined,
			Addr:       s.slots[i].addr,
			LastSeen:   s.slots[i].lastSeen,
			Generation: s.slots[i].generation,
		}
	}
	return out
}

// Launch starts one mining job across the worker processes and returns its
// handle; the same contract as Session.Launch, plus the requirement that
// opt.Spec names the workload (worker processes rebuild the algorithm from
// the spec — a core.Algorithm value cannot cross a process boundary).
func (s *RemoteSession) Launch(a core.Algorithm, opt JobOptions) (*Job, error) {
	if opt.Spec == nil {
		return nil, fmt.Errorf("cluster: remote launch requires JobOptions.Spec (worker processes rebuild the algorithm from it)")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: session closed")
	}
	s.nextCh++
	ch := s.nextCh
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", ch)
	}
	if _, live := s.jobs[id]; live {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: job id %q already running", id)
	}
	s.jobs[id] = nil
	s.mu.Unlock()

	cfg := s.cfg
	cfg.JobID = id
	cfg.Tracer = opt.Tracer
	cfg.RoundHook = opt.RoundHook
	cfg.FailTimeout = s.rcfg.FailTimeout
	// opt.MemBudgetBytes is not enforced here: the budget is charged from
	// worker progress loops, which live in other processes. The serving
	// layer's admission costing still applies.
	if opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opt.CheckpointEvery
	}
	if cfg.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(cfg.CheckpointDir, id)
	}

	nodes := cfg.Workers + 1
	counters := make([]*metrics.Counters, nodes)
	for i := range counters {
		counters[i] = &metrics.Counters{}
	}
	eps, err := s.mux.Open(ch, counters, cfg.Tracer)
	if err != nil {
		s.forget(id, ch)
		return nil, err
	}

	env := &launchEnv{
		assign:        s.assign,
		partitionTime: s.partitionTime,
		endpoints:     eps,
		counters:      counters,
		remote:        newRemoteJobState(cfg.Workers, s.rcfg.ResultTimeout),
		release: func() {
			// Backstop: workers normally stop on the master's msgStop
			// broadcast; tell them explicitly too, in case the engine frame
			// was dropped on a severed connection.
			s.mu.Lock()
			joined := make([]int, 0, cfg.Workers)
			for i := range s.slots {
				if s.slots[i].joined {
					joined = append(joined, i)
				}
			}
			s.mu.Unlock()
			stop := encodeCtrl(jobStopMsg{Channel: ch})
			for _, i := range joined {
				_ = s.ctl.Send(i, ctrlJobStop, stop)
			}
			s.mux.CloseChannel(ch)
			s.forget(id, ch)
		},
	}
	j, err := startWithEnv(s.g, a, cfg, env)
	if err != nil {
		s.mux.CloseChannel(ch)
		s.forget(id, ch)
		return nil, err
	}
	meta := &remoteJobMeta{channel: ch, id: id, spec: *opt.Spec, ckptEvery: cfg.CheckpointEvery, job: j}

	s.mu.Lock()
	s.jobs[id] = j
	s.byCh[ch] = meta
	joined := make([]int, 0, cfg.Workers)
	for i := range s.slots {
		if s.slots[i].joined {
			joined = append(joined, i)
		}
	}
	s.mu.Unlock()

	go s.watchFailures(j)
	for _, i := range joined {
		s.sendJobStart(i, meta, false)
	}
	return j, nil
}

func (s *RemoteSession) forget(id string, ch uint64) {
	s.mu.Lock()
	delete(s.jobs, id)
	delete(s.byCh, ch)
	s.mu.Unlock()
}

// ActiveJobs returns the number of jobs launched and not yet torn down.
func (s *RemoteSession) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Graph returns the resident graph.
func (s *RemoteSession) Graph() *graph.Graph { return s.g }

// Config returns the session's template config (with defaults applied).
func (s *RemoteSession) Config() Config { return s.cfg }

// PartitionTime is the coordinator's one-time static partitioning cost.
func (s *RemoteSession) PartitionTime() time.Duration { return s.partitionTime }

// EdgeCut is the partitioning edge-cut fraction of the resident assignment.
func (s *RemoteSession) EdgeCut() float64 { return s.assign.EdgeCut(s.g) }

// Fingerprint identifies the resident graph plus the session topology;
// worker processes must present the same one to join.
func (s *RemoteSession) Fingerprint() uint64 { return s.fingerprint }

// Addr is the coordinator's cluster address (what workers dial to join).
func (s *RemoteSession) Addr() string { return s.net.Addr() }

// DroppedMessages counts stale mux traffic plus frames abandoned because a
// worker process stayed unreachable past the redial budget.
func (s *RemoteSession) DroppedMessages() int64 { return s.mux.Dropped() + s.net.Dropped() }

// Close cancels any running jobs, waits for their teardown, and shuts the
// cluster transport down. Worker processes see their connections die and
// exit on their own schedule.
func (s *RemoteSession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j != nil {
			live = append(live, j)
		}
	}
	s.mu.Unlock()

	for _, j := range live {
		j.Cancel()
	}
	for _, j := range live {
		_, _ = j.Wait()
	}
	s.mux.Close()
	s.net.Close()
	s.mux.WaitDemux()
	<-s.ctlDone
}

func (s *RemoteSession) logf(format string, args ...any) {
	if s.rcfg.Logf != nil {
		s.rcfg.Logf(format, args...)
	}
}
