package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/jobspec"
	"gminer/internal/metrics"
	"gminer/internal/partition"
	"gminer/internal/trace"
	"gminer/internal/transport"
)

// errCoordinatorShutdown is the cancel cause Close attaches to jobs it
// tears down: it marks the teardown as a coordinator restart rather than
// a user cancel, so the job's durable JOBSPEC survives for `-resume`.
var errCoordinatorShutdown = errors.New("cluster: coordinator shutdown")

// jobspecName is the durable per-job spec file the coordinator writes
// into the job's checkpoint directory at launch, next to the MANIFEST. A
// restarted coordinator rebuilds its job registry from these.
const jobspecName = "JOBSPEC"

// RemoteSessionConfig configures the coordinator side of a multi-process
// cluster.
type RemoteSessionConfig struct {
	// Listen is the coordinator's TCP listen address ("127.0.0.1:0" for an
	// ephemeral port).
	Listen string
	// Advertise is the address worker processes are told to dial; defaults
	// to the bound listen address.
	Advertise string
	// FailTimeout marks a worker process failed after this much silence
	// during a job (the engine's failure detector). Default 2s.
	FailTimeout time.Duration
	// ResultTimeout bounds how long a finished job waits for every worker
	// process to ship its final records. Default 60s.
	ResultTimeout time.Duration
	// Redial is the dial retry budget for coordinator → worker traffic.
	// The zero value inherits the transport default (10s): long enough to
	// bridge a worker-process restart.
	Redial transport.RedialPolicy
	// Logf, if non-nil, receives coordinator lifecycle lines (joins,
	// losses, rejections).
	Logf func(format string, args ...any)
}

func (c RemoteSessionConfig) withDefaults() RemoteSessionConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 2 * time.Second
	}
	if c.ResultTimeout <= 0 {
		c.ResultTimeout = 60 * time.Second
	}
	return c
}

// WorkerStatus is one worker slot's view in the coordinator's registry,
// exposed to the serving layer's health endpoint.
type WorkerStatus struct {
	Node     int       `json:"node"`
	Joined   bool      `json:"joined"`
	Addr     string    `json:"addr,omitempty"`
	LastSeen time.Time `json:"-"`
	// Generation counts how many times the slot was (re)claimed; >1 means
	// a replacement process took over after a loss. It doubles as the
	// slot's fencing token: traffic from older generations is refused.
	Generation int `json:"generation,omitempty"`
	// Draining marks a worker that received SIGTERM and is waiting for a
	// barrier checkpoint to commit before detaching.
	Draining bool `json:"draining,omitempty"`
}

// workerSlot is the coordinator's registry entry for one worker node.
type workerSlot struct {
	addr       string
	joined     bool
	draining   bool
	lastSeen   time.Time
	generation int
	// held maps job ID → set of checkpoint epochs the process claimed to
	// hold local snapshot files for at join (coordinator-resume input).
	held map[string]map[int64]bool
}

// remoteJobMeta is what the coordinator must remember about a live job to
// (re)start it on a worker process: the spec the worker rebuilds the
// algorithm from, and the job whose sink manifest names the committed
// epochs a rejoining worker may restore.
type remoteJobMeta struct {
	channel   uint64
	id        string
	spec      jobspec.Spec
	ckptEvery time.Duration
	job       *Job
	// resumeEpoch, when not noEpoch, pins the initial job-start resume
	// refs to ONE epoch: a full-session resume must restore every worker
	// from the same cut, so the coordinator picks the highest committed
	// epoch all rejoined workers hold and sends only that. Cleared (set to
	// noEpoch) after the initial starts; later rejoins fall back across
	// the whole manifest as usual.
	resumeEpoch atomic.Int64
}

// jobspecFile is the JOBSPEC JSON schema: everything Launch needs to
// reconstruct a held job on a restarted coordinator.
type jobspecFile struct {
	ID                     string       `json:"id"`
	Spec                   jobspec.Spec `json:"spec"`
	CheckpointEverySeconds float64      `json:"checkpoint_every_seconds,omitempty"`
}

// HeldJob is one resumable job a restarted coordinator found on disk
// (JOBSPEC + MANIFEST in its checkpoint directory). The serving layer
// resubmits these after the worker slots rejoin.
type HeldJob struct {
	ID                     string
	Spec                   jobspec.Spec
	CheckpointEverySeconds float64
}

// RemoteSession is the multi-process sibling of Session: the same
// serve-many-jobs surface (Launch, ActiveJobs, Close, fingerprint, ...)
// with the K engine workers living in other OS processes. The coordinator
// owns admission (the join handshake), the job registry, the checkpoint
// MANIFEST and every job's master; worker processes own the partition
// tables, the task pipelines and the checkpoint payload files.
//
// Determinism is preserved across the process split: the partition
// assignment is a pure function of (graph, workers, partitioner) computed
// identically on every process, task IDs are worker-scoped, and the final
// record set is sorted after the per-worker results are merged — so a
// job's records are byte-identical to the same job on a single-process
// Session.
type RemoteSession struct {
	g    *graph.Graph
	cfg  Config
	rcfg RemoteSessionConfig

	assign        *partition.Assignment
	partitionTime time.Duration
	fingerprint   uint64

	net *transport.RemoteNetwork
	mux *transport.Mux
	ctl transport.Endpoint

	readyOnce sync.Once
	readyCh   chan struct{}

	// fence is the cluster's fencing-token ledger, raised at admission and
	// consulted by the control loop, every job's master and every sink.
	fence *fenceTable
	// fencedSeen dedups fenced-traffic log lines per slot: a zombie can
	// emit thousands of frames before it notices it is dead, and one line
	// per (generation, message type) is all an operator needs. Trace events
	// still fire per refusal.
	fencedSeen []atomic.Int64

	mu      sync.Mutex
	slots   []workerSlot
	jobs    map[string]*Job
	byCh    map[uint64]*remoteJobMeta
	nextCh  uint64
	closed  bool
	ctlDone chan struct{}
	// resumable maps job IDs found on disk at a `-resume` start to their
	// JOBSPEC contents; a Launch of one of these IDs restores from the
	// MANIFEST instead of starting fresh.
	resumable map[string]HeldJob
}

// NewRemoteSession starts the coordinator: it partitions the graph (for
// the fingerprint, edge-cut reporting and job masters), binds the cluster
// listener and begins admitting worker processes. Jobs may be launched
// immediately; their masters' traffic to not-yet-joined workers queues in
// the transport until the worker dials in (WaitReady avoids that warm-up).
func NewRemoteSession(g *graph.Graph, cfg Config, rcfg RemoteSessionConfig) (*RemoteSession, error) {
	cfg = cfg.Defaults()
	rcfg = rcfg.withDefaults()
	if !g.Frozen() {
		return nil, fmt.Errorf("cluster: session graph must be frozen")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("cluster: remote sessions do not support chaos injection")
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("cluster: coordinator resume requires a checkpoint directory")
	}
	if cfg.Dynamic {
		return nil, fmt.Errorf("cluster: remote sessions do not support graph mutations (run single-process for -dynamic)")
	}

	s := &RemoteSession{
		g:          g,
		cfg:        cfg,
		rcfg:       rcfg,
		readyCh:    make(chan struct{}),
		fence:      newFenceTable(cfg.Workers),
		slots:      make([]workerSlot, cfg.Workers),
		jobs:       make(map[string]*Job),
		byCh:       make(map[uint64]*remoteJobMeta),
		ctlDone:    make(chan struct{}),
		fencedSeen: make([]atomic.Int64, cfg.Workers),
	}
	if cfg.Resume {
		s.resumable = scanHeldJobs(cfg.CheckpointDir)
		// The session-level Resume flag has done its work (the scan); jobs
		// resume individually by ID so fresh launches still start clean.
		s.cfg.Resume = false
		cfg.Resume = false
	}

	pStart := time.Now()
	assign, err := cfg.Partitioner.Partition(g, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: session partition: %w", err)
	}
	s.partitionTime = time.Since(pStart)
	s.assign = assign
	s.fingerprint = jobFingerprint(g, "session", cfg)

	nodes := cfg.Workers + 1
	s.net, err = transport.NewRemote(transport.RemoteConfig{
		Nodes:     nodes,
		Local:     cfg.Workers, // the coordinator holds the master slot K
		Listen:    rcfg.Listen,
		Advertise: rcfg.Advertise,
		Redial:    rcfg.Redial,
		Hello:     s.handleHello,
		// Transport-level fencing refusals (frames a zombie sent after its
		// slot was reclaimed) surface as EvFenced trace events on every
		// live job, same as the control loop's app-level refusals.
		OnFenced: func(from int, typ uint8, gen, min uint32) {
			s.traceFenced(from, int64(gen), typ)
		},
	})
	if err != nil {
		return nil, err
	}
	under := make([]transport.Endpoint, nodes)
	under[cfg.Workers] = s.net.Endpoint()
	s.mux = transport.NewMuxPaused(under)
	ctlEps, err := s.mux.Open(ctrlChannel, nil, nil)
	if err != nil {
		s.net.Close()
		return nil, err
	}
	s.ctl = ctlEps[cfg.Workers]
	s.mux.StartDemux()
	go s.ctlLoop()
	return s, nil
}

// scanHeldJobs walks the coordinator's checkpoint root for per-job
// subdirectories carrying both a JOBSPEC and a committed MANIFEST — jobs
// a previous coordinator process held when it died.
func scanHeldJobs(root string) map[string]HeldJob {
	held := make(map[string]HeldJob)
	entries, err := os.ReadDir(root)
	if err != nil {
		return held
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		b, err := os.ReadFile(filepath.Join(dir, jobspecName))
		if err != nil {
			continue
		}
		var jf jobspecFile
		if json.Unmarshal(b, &jf) != nil || jf.ID == "" || jf.ID != e.Name() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
			// No committed epoch: nothing to resume from. Drop the stale
			// spec so the next fresh launch of this ID starts clean.
			_ = os.Remove(filepath.Join(dir, jobspecName))
			continue
		}
		held[jf.ID] = HeldJob{ID: jf.ID, Spec: jf.Spec, CheckpointEverySeconds: jf.CheckpointEverySeconds}
	}
	return held
}

// HeldJobs lists the resumable jobs a `-resume` coordinator found on
// disk, sorted by ID. The serving layer resubmits each (same ID) once the
// worker slots have rejoined; Launch then restores it from the MANIFEST.
func (s *RemoteSession) HeldJobs() []HeldJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HeldJob, 0, len(s.resumable))
	for _, hj := range s.resumable {
		out = append(out, hj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleHello is the admission gate, invoked by the transport for every
// FrameHello received on an accepted connection. It decodes and validates
// the worker's join request, assigns (or re-assigns) a node slot, installs
// the peer address, rebroadcasts the topology, and re-starts every live
// job on the joiner — the epoch-fallback rejoin path a replacement process
// takes after a crash.
func (s *RemoteSession) handleHello(payload []byte) []byte {
	reject := func(reason string) []byte {
		s.logf("join rejected: %s", reason)
		return encodeWelcome(welcomeFrame{OK: false, Reason: reason})
	}
	h, err := decodeHello(payload)
	if err != nil {
		return reject(err.Error())
	}
	if err := validateHello(h, s.fingerprint, s.cfg.Workers); err != nil {
		return reject(err.Error())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return reject("cluster: coordinator shutting down")
	}
	slot := int(h.Node)
	if slot < 0 {
		slot = s.pickSlotLocked()
	}
	if slot < 0 {
		s.mu.Unlock()
		return reject(fmt.Sprintf("cluster: all %d worker slots joined and live", s.cfg.Workers))
	}
	st := &s.slots[slot]
	rejoin := st.generation > 0
	st.addr = h.Advertise
	st.joined = true
	st.draining = false
	st.lastSeen = time.Now()
	st.generation++
	generation := st.generation
	st.held = make(map[string]map[int64]bool, len(h.Held))
	for _, he := range h.Held {
		set := make(map[int64]bool, len(he.Epochs))
		for _, e := range he.Epochs {
			set[e] = true
		}
		st.held[he.JobID] = set
	}
	// Raise the fencing token BEFORE installing the peer address: from this
	// instant the previous holder of the slot is a zombie everywhere — the
	// transport drops its frames, the masters drop its acks, the sinks
	// refuse its commits.
	s.fence.raise(slot, int64(generation))
	s.net.FencePeer(slot, uint32(generation))
	s.net.SetPeer(slot, h.Advertise)

	peers, gens := s.peerTableLocked()
	allJoined := true
	for i := range s.slots {
		if !s.slots[i].joined {
			allJoined = false
			break
		}
	}
	// Snapshot the live jobs so the (re)start messages go out after the
	// lock drops: encodeCtrl and manifest walks need no registry state.
	restarts := make([]*remoteJobMeta, 0, len(s.byCh))
	for _, meta := range s.byCh {
		restarts = append(restarts, meta)
	}
	s.mu.Unlock()

	s.logf("worker %d joined from %s (generation %d)", slot, h.Advertise, generation)
	s.broadcastTopology(peers, gens)
	for _, meta := range restarts {
		s.sendJobStart(slot, meta, true)
		if rejoin {
			meta.job.noteRecovered()
		}
	}
	if allJoined {
		s.readyOnce.Do(func() { close(s.readyCh) })
	}
	return encodeWelcome(welcomeFrame{
		OK:         true,
		Node:       int32(slot),
		Workers:    int32(s.cfg.Workers),
		Peers:      peers,
		Generation: int64(generation),
	})
}

// pickSlotLocked auto-assigns a slot: the first never/no-longer-joined
// one, else the stalest joined slot whose silence exceeds the failure
// timeout (its process is presumed dead), else -1. Caller holds s.mu.
func (s *RemoteSession) pickSlotLocked() int {
	for i := range s.slots {
		if !s.slots[i].joined {
			return i
		}
	}
	stalest, age := -1, s.rcfg.FailTimeout
	for i := range s.slots {
		if since := time.Since(s.slots[i].lastSeen); since > age {
			stalest, age = i, since
		}
	}
	return stalest
}

// peerTableLocked builds the dial-address table and the matching slot
// generations: workers 0..K-1, the coordinator at K (generation 0: the
// coordinator is never fenced). Caller holds s.mu.
func (s *RemoteSession) peerTableLocked() ([]string, []int64) {
	peers := make([]string, s.cfg.Workers+1)
	gens := make([]int64, s.cfg.Workers+1)
	for i := range s.slots {
		if s.slots[i].joined {
			peers[i] = s.slots[i].addr
		}
		gens[i] = int64(s.slots[i].generation)
	}
	peers[s.cfg.Workers] = s.net.Addr()
	return peers, gens
}

// broadcastTopology tells every joined worker the current peer table and
// slot generations, so live workers learn a replacement's address, sever
// their stale connections to the dead process, and raise their transport
// fencing floor against it (a zombie's pull requests and task frames die
// at every peer, not just at the coordinator).
func (s *RemoteSession) broadcastTopology(peers []string, gens []int64) {
	payload := encodeCtrl(topologyMsg{Peers: peers, Gens: gens})
	for i, addr := range peers[:s.cfg.Workers] {
		if addr != "" {
			_ = s.ctl.Send(i, ctrlTopology, payload)
		}
	}
}

// sendJobStart (re)starts one job on one worker process. With resume set,
// the message carries the committed (epoch, crc) pairs for that worker
// from the job's MANIFEST — the coordinator is its sole owner — newest
// first, so the rejoining process restores the newest epoch whose local
// snapshot file verifies and falls back across older commits.
func (s *RemoteSession) sendJobStart(node int, meta *remoteJobMeta, resume bool) {
	m := jobStartMsg{
		Channel:                meta.channel,
		JobID:                  meta.id,
		Spec:                   meta.spec,
		CheckpointEverySeconds: meta.ckptEvery.Seconds(),
	}
	if resume {
		if man := meta.job.sink.manifestView(); man != nil {
			epochs := man.epochs()
			if pin := meta.resumeEpoch.Load(); pin != noEpoch {
				// Full-session resume: every worker restores the same cut.
				epochs = []int64{pin}
			}
			for _, epoch := range epochs {
				crcs := man.crcsFor(epoch)
				if node < len(crcs) {
					m.Resume = append(m.Resume, resumeEpochRef{Epoch: epoch, CRC: crcs[node]})
				}
			}
		}
	}
	_ = s.ctl.Send(node, ctrlJobStart, encodeCtrl(m))
}

// ctlLoop routes worker → coordinator control traffic: final job results
// to the owning job's collector, heartbeats to the health registry.
func (s *RemoteSession) ctlLoop() {
	defer close(s.ctlDone)
	for {
		msg, ok := s.ctl.Recv()
		if !ok {
			return
		}
		switch msg.Type {
		case ctrlJobResult:
			var m jobResultMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			if s.fence.stale(m.Worker, m.Gen) {
				// A fenced-out process shipping a "final" result: its slot
				// has been reclaimed, and its partial output must not
				// supersede the replacement's.
				s.traceFenced(m.Worker, m.Gen, ctrlJobResult)
				continue
			}
			s.mu.Lock()
			meta := s.byCh[m.Channel]
			s.mu.Unlock()
			if meta != nil && meta.job.remote != nil {
				meta.job.remote.deliver(&m)
			}
		case ctrlHeartbeat:
			var m heartbeatMsg
			if len(msg.Payload) > 0 {
				if err := decodeCtrl(msg.Payload, &m); err != nil {
					continue
				}
			}
			s.mu.Lock()
			if msg.From >= 0 && msg.From < len(s.slots) {
				st := &s.slots[msg.From]
				switch {
				case m.Gen == int64(st.generation):
					st.lastSeen = time.Now()
					// A heartbeat proves the process behind the slot's
					// address is alive; re-mark a slot the failure detector
					// gave up on. Only the CURRENT generation may do this —
					// a delayed zombie's heartbeat re-marking the slot
					// joined is exactly the split-brain fencing prevents.
					st.joined = true
					st.draining = m.Draining
				case m.Gen < int64(st.generation):
					s.mu.Unlock()
					s.traceFenced(msg.From, m.Gen, ctrlHeartbeat)
					continue
				}
			}
			s.mu.Unlock()
		case ctrlDrain:
			var m drainMsg
			if err := decodeCtrl(msg.Payload, &m); err != nil {
				continue
			}
			if s.fence.stale(msg.From, m.Gen) {
				s.traceFenced(msg.From, m.Gen, ctrlDrain)
				continue
			}
			// The barrier wait can span seconds; never block the ctl loop
			// (checkpoint acks ride the engine channels, but results and
			// heartbeats ride this one).
			go s.handleDrain(msg.From, m.Gen)
		}
	}
}

// traceFenced records a refused message from a fenced-out generation on
// every live job's tracer (arg = generation << 8 | message type). Called
// both from the control loop (app-level refusals) and the transport's
// OnFenced hook (frames dropped before any decoder saw them).
func (s *RemoteSession) traceFenced(from int, gen int64, typ uint8) {
	key := gen<<8 | int64(typ)
	if from >= 0 && from < len(s.fencedSeen) && s.fencedSeen[from].Swap(key) != key {
		s.logf("fenced: dropped message type %d from worker %d generation %d (slot is at %d)",
			typ, from, gen, s.fence.current(from))
	}
	s.mu.Lock()
	metas := make([]*remoteJobMeta, 0, len(s.byCh))
	for _, meta := range s.byCh {
		metas = append(metas, meta)
	}
	s.mu.Unlock()
	for _, meta := range metas {
		meta.job.cfg.Tracer.Handle(from, trace.CompCheckpoint).Event(trace.EvFenced, uint64(gen)<<8|uint64(typ))
	}
}

// handleDrain services one worker's SIGTERM drain request: mark the slot
// draining, force a barrier checkpoint on every live checkpointing job,
// wait for those epochs to commit, then tell the worker it may detach.
// On timeout (a peer died mid-barrier, checkpointing disabled, ...) the
// worker is released anyway — it has SIGTERM pending and holding it
// hostage helps nobody; its jobs recover through the normal rejoin path.
func (s *RemoteSession) handleDrain(node int, gen int64) {
	s.mu.Lock()
	if node >= 0 && node < len(s.slots) && int64(s.slots[node].generation) == gen {
		s.slots[node].draining = true
	}
	type pending struct {
		meta   *remoteJobMeta
		before int64
	}
	waits := make([]pending, 0, len(s.byCh))
	for _, meta := range s.byCh {
		if meta.job.checkpointing() && !meta.job.Done() {
			waits = append(waits, pending{meta: meta, before: meta.job.committedEpoch()})
		}
	}
	s.mu.Unlock()

	s.logf("worker %d draining (generation %d): forcing barrier checkpoint on %d job(s)", node, gen, len(waits))
	for _, p := range waits {
		p.meta.job.requestBarrier()
	}
	deadline := time.Now().Add(s.rcfg.ResultTimeout)
	for _, p := range waits {
		for p.meta.job.committedEpoch() <= p.before && !p.meta.job.Done() {
			if time.Now().After(deadline) {
				s.logf("worker %d drain: job %s barrier did not commit in time; releasing anyway", node, p.meta.id)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	_ = s.ctl.Send(node, ctrlDrainOK, encodeCtrl(drainMsg{Gen: gen}))
	s.logf("worker %d released to detach (generation %d)", node, gen)
}

// watchFailures marks worker slots the job's failure detector flagged as
// lost, so /healthz degrades and the slot becomes claimable by an
// auto-assigned replacement.
func (s *RemoteSession) watchFailures(j *Job) {
	for {
		select {
		case <-j.master.doneCh:
			return
		case i := <-j.failures:
			s.mu.Lock()
			if i >= 0 && i < len(s.slots) && time.Since(s.slots[i].lastSeen) > s.rcfg.FailTimeout {
				s.slots[i].joined = false
				s.mu.Unlock()
				s.logf("worker %d lost (silent past %s); awaiting replacement", i, s.rcfg.FailTimeout)
				continue
			}
			s.mu.Unlock()
		}
	}
}

// WaitReady blocks until every worker slot has joined (or the timeout
// passes). Launching before ready works — early master traffic queues in
// the transport — but a serving daemon should gate its HTTP listener on
// readiness so the first job doesn't pay the join latency.
func (s *RemoteSession) WaitReady(timeout time.Duration) error {
	select {
	case <-s.readyCh:
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	missing := make([]int, 0, len(s.slots))
	for i := range s.slots {
		if !s.slots[i].joined {
			missing = append(missing, i)
		}
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	return fmt.Errorf("cluster: workers %v have not joined within %s", missing, timeout)
}

// Ready reports whether every worker slot is currently joined.
func (s *RemoteSession) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.slots {
		if !s.slots[i].joined {
			return false
		}
	}
	return true
}

// WorkerHealth returns the per-slot join/liveness view for /healthz.
func (s *RemoteSession) WorkerHealth() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, len(s.slots))
	for i := range s.slots {
		out[i] = WorkerStatus{
			Node:       i,
			Joined:     s.slots[i].joined,
			Addr:       s.slots[i].addr,
			LastSeen:   s.slots[i].lastSeen,
			Generation: s.slots[i].generation,
			Draining:   s.slots[i].draining,
		}
	}
	return out
}

// Launch starts one mining job across the worker processes and returns its
// handle; the same contract as Session.Launch, plus the requirement that
// opt.Spec names the workload (worker processes rebuild the algorithm from
// the spec — a core.Algorithm value cannot cross a process boundary).
func (s *RemoteSession) Launch(a core.Algorithm, opt JobOptions) (*Job, error) {
	if opt.Spec == nil {
		return nil, fmt.Errorf("cluster: remote launch requires JobOptions.Spec (worker processes rebuild the algorithm from it)")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: session closed")
	}
	s.nextCh++
	ch := s.nextCh
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", ch)
	}
	if _, live := s.jobs[id]; live {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: job id %q already running", id)
	}
	s.jobs[id] = nil
	// A job whose ID matches a JOBSPEC+MANIFEST found at a `-resume` start
	// restores from its committed epochs instead of starting fresh.
	_, resumeJob := s.resumable[id]
	delete(s.resumable, id)
	s.mu.Unlock()

	cfg := s.cfg
	cfg.JobID = id
	cfg.Tracer = opt.Tracer
	cfg.RoundHook = opt.RoundHook
	cfg.FailTimeout = s.rcfg.FailTimeout
	cfg.Resume = resumeJob
	// opt.MemBudgetBytes is not enforced here: the budget is charged from
	// worker progress loops, which live in other processes. The serving
	// layer's admission costing still applies.
	if opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opt.CheckpointEvery
	}
	if cfg.CheckpointDir != "" {
		cfg.CheckpointDir = filepath.Join(cfg.CheckpointDir, id)
	}

	nodes := cfg.Workers + 1
	counters := make([]*metrics.Counters, nodes)
	for i := range counters {
		counters[i] = &metrics.Counters{}
	}
	eps, err := s.mux.Open(ch, counters, cfg.Tracer)
	if err != nil {
		s.forget(id, ch)
		return nil, err
	}

	env := &launchEnv{
		assign:        s.assign,
		partitionTime: s.partitionTime,
		endpoints:     eps,
		counters:      counters,
		fence:         s.fence,
		remote:        remoteStateWithFence(cfg.Workers, s.rcfg.ResultTimeout, s.fence),
		release: func() {
			// Backstop: workers normally stop on the master's msgStop
			// broadcast; tell them explicitly too, in case the engine frame
			// was dropped on a severed connection.
			s.mu.Lock()
			j := s.jobs[id]
			joined := make([]int, 0, cfg.Workers)
			for i := range s.slots {
				if s.slots[i].joined {
					joined = append(joined, i)
				}
			}
			s.mu.Unlock()
			stop := encodeCtrl(jobStopMsg{Channel: ch})
			for _, i := range joined {
				_ = s.ctl.Send(i, ctrlJobStop, stop)
			}
			// The durable JOBSPEC outlives a coordinator shutdown (so
			// `-resume` can rebuild the job) but not a normal completion or
			// user cancel.
			if cfg.CheckpointDir != "" && (j == nil || !errors.Is(j.Err(), errCoordinatorShutdown)) {
				_ = os.Remove(filepath.Join(cfg.CheckpointDir, jobspecName))
			}
			s.mux.CloseChannel(ch)
			s.forget(id, ch)
		},
	}
	j, err := startWithEnv(s.g, a, cfg, env)
	if err != nil {
		s.mux.CloseChannel(ch)
		s.forget(id, ch)
		return nil, err
	}
	meta := &remoteJobMeta{channel: ch, id: id, spec: *opt.Spec, ckptEvery: cfg.CheckpointEvery, job: j}
	meta.resumeEpoch.Store(noEpoch)
	if cfg.CheckpointDir != "" {
		// Persist the spec next to the MANIFEST so a restarted coordinator
		// can rebuild and resume this job.
		b, _ := json.Marshal(jobspecFile{ID: id, Spec: *opt.Spec, CheckpointEverySeconds: cfg.CheckpointEvery.Seconds()})
		if err := writeFileDurable(filepath.Join(cfg.CheckpointDir, jobspecName), b); err != nil {
			s.logf("job %s: persisting JOBSPEC failed: %v (job runs; coordinator resume will not cover it)", id, err)
		}
	}

	s.mu.Lock()
	s.jobs[id] = j
	s.byCh[ch] = meta
	joined := make([]int, 0, cfg.Workers)
	for i := range s.slots {
		if s.slots[i].joined {
			joined = append(joined, i)
		}
	}
	if resumeJob {
		// Pin the initial resume refs to the highest committed epoch every
		// joined worker claims to hold, so the whole cluster restores one
		// consistent cut (falling back to the manifest head if the held
		// lists are inconclusive — the CRC check decides at restore).
		if man := j.sink.manifestView(); man != nil {
			pin := man.Epoch
			for _, epoch := range man.epochs() {
				all := true
				for i := range s.slots {
					if !s.slots[i].joined || !s.slots[i].held[id][epoch] {
						all = false
						break
					}
				}
				if all {
					pin = epoch
					break
				}
			}
			meta.resumeEpoch.Store(pin)
		}
	}
	s.mu.Unlock()

	go s.watchFailures(j)
	for _, i := range joined {
		s.sendJobStart(i, meta, resumeJob)
	}
	if resumeJob {
		meta.resumeEpoch.Store(noEpoch)
		s.logf("job %s resumed from committed checkpoint (%d worker(s) started)", id, len(joined))
	}
	return j, nil
}

func (s *RemoteSession) forget(id string, ch uint64) {
	s.mu.Lock()
	delete(s.jobs, id)
	delete(s.byCh, ch)
	s.mu.Unlock()
}

// ActiveJobs returns the number of jobs launched and not yet torn down.
func (s *RemoteSession) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Graph returns the resident graph.
func (s *RemoteSession) Graph() *graph.Graph { return s.g }

// Config returns the session's template config (with defaults applied).
func (s *RemoteSession) Config() Config { return s.cfg }

// PartitionTime is the coordinator's one-time static partitioning cost.
func (s *RemoteSession) PartitionTime() time.Duration { return s.partitionTime }

// EdgeCut is the partitioning edge-cut fraction of the resident assignment.
func (s *RemoteSession) EdgeCut() float64 { return s.assign.EdgeCut(s.g) }

// Fingerprint identifies the resident graph plus the session topology;
// worker processes must present the same one to join.
func (s *RemoteSession) Fingerprint() uint64 { return s.fingerprint }

// GraphEpoch is always 0: a multi-process cluster's resident graph is
// immutable (worker processes each hold their own copy; the dynamic
// mutation path is in-process-session only).
func (s *RemoteSession) GraphEpoch() int64 { return 0 }

// WithGraphRead runs fn directly: with no mutation path, the resident
// graph is always safe to read.
func (s *RemoteSession) WithGraphRead(fn func()) { fn() }

// Addr is the coordinator's cluster address (what workers dial to join).
func (s *RemoteSession) Addr() string { return s.net.Addr() }

// DroppedMessages counts stale mux traffic plus frames abandoned because a
// worker process stayed unreachable past the redial budget.
func (s *RemoteSession) DroppedMessages() int64 { return s.mux.Dropped() + s.net.Dropped() }

// FencedFrames counts inbound frames the coordinator's transport refused
// because their sender's generation had been fenced out — a zombie
// predecessor provably cut off, not split-braining the cluster.
func (s *RemoteSession) FencedFrames() int64 { return s.net.Fenced() }

// Close cancels any running jobs, waits for their teardown, and shuts the
// cluster transport down. Worker processes see their connections die and
// exit on their own schedule. The cancellation is attributed to
// coordinator shutdown, which keeps each job's durable JOBSPEC on disk: a
// restarted coordinator with `-resume` rebuilds and resumes those jobs.
func (s *RemoteSession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j != nil {
			live = append(live, j)
		}
	}
	s.mu.Unlock()

	for _, j := range live {
		j.CancelCause(errCoordinatorShutdown)
	}
	for _, j := range live {
		_, _ = j.Wait()
	}
	s.mux.Close()
	s.net.Close()
	s.mux.WaitDemux()
	<-s.ctlDone
}

func (s *RemoteSession) logf(format string, args ...any) {
	if s.rcfg.Logf != nil {
		s.rcfg.Logf(format, args...)
	}
}
