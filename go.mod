module gminer

go 1.22
