package gminer_test

import (
	"path/filepath"
	"testing"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

// These tests exercise the public API surface exactly the way README and
// the examples present it.

func TestPublicRunQuickstart(t *testing.T) {
	g := gen.MustBuild(gen.Skitter, 0.2)
	res, err := gminer.Run(g, algo.NewTriangleCount(), gminer.Config{Workers: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AggGlobal.(int64), algo.RefTriangles(g); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestPublicStartWait(t *testing.T) {
	g := gen.MustBuild(gen.Skitter, 0.2)
	job, err := gminer.Start(g, algo.NewMaxClique(), gminer.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.AggGlobal.(int) < 2 {
		t.Fatalf("clique %v", res.AggGlobal)
	}
	// Wait is idempotent.
	res2, err := job.Wait()
	if err != nil || res2 != res {
		t.Fatal("second Wait returned different result")
	}
}

func TestPublicGraphBuilding(t *testing.T) {
	g := gminer.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.Freeze()
	res, err := gminer.Run(g, algo.NewTriangleCount(), gminer.Config{Workers: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AggGlobal.(int64) != 1 {
		t.Fatalf("triangle count %v", res.AggGlobal)
	}
}

func TestPublicLoadGraph(t *testing.T) {
	g := gen.MustBuild(gen.Skitter, 0.1)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := gminer.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	want := algo.RefTriangles(g)
	res, err := gminer.Run(g2, algo.NewTriangleCount(), gminer.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AggGlobal.(int64); got != want {
		t.Fatalf("loaded graph: got %d want %d", got, want)
	}
}

// customAlgo verifies the full Algorithm interface is implementable from
// outside the module internals (the examples/customalgo pattern): count
// vertices with degree >= 2 via a one-round algorithm.
type customAlgo struct {
	gminer.NoContext
}

func (customAlgo) Name() string { return "degree2" }

func (customAlgo) Seed(v *gminer.Vertex, spawn func(*gminer.Task)) {
	if v.Degree() < 2 {
		return
	}
	t := &gminer.Task{}
	t.Subgraph.AddVertex(v.ID)
	spawn(t)
}

func (customAlgo) Update(t *gminer.Task, cands []*gminer.Vertex, env gminer.Env) {
	env.Emit("deg2")
}

func TestPublicCustomAlgorithm(t *testing.T) {
	g := gen.MustBuild(gen.Skitter, 0.15)
	want := 0
	g.ForEach(func(v *gminer.Vertex) bool {
		if v.Degree() >= 2 {
			want++
		}
		return true
	})
	res, err := gminer.Run(g, customAlgo{}, gminer.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != want {
		t.Fatalf("got %d records want %d", len(res.Records), want)
	}
}
