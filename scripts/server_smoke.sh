#!/usr/bin/env bash
# server_smoke.sh — end-to-end serving-mode smoke test.
#
# Starts a gminerd daemon over one warm cluster, submits three concurrent
# jobs (tc, gm, cd), and requires every served result to be byte-identical
# to the single-shot CLI run of the same spec on the same dataset. A
# fourth job is cancelled mid-flight and must drain without disturbing the
# daemon (healthz stays ok, gminer_jobs_active returns to 0). Finally the
# daemon is SIGTERMed and must release its port for an immediate rebind.
set -euo pipefail

PRESET="${PRESET:-dblp-s}"
SCALE="${SCALE:-0.5}"
PORT="${PORT:-17077}"
ADDR="127.0.0.1:${PORT}"
WORKERS=3
THREADS=2
DIR="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/gminer" ./cmd/gminer
go build -o "$DIR/gminerd" ./cmd/gminerd

echo "== single-shot references"
for app in tc gm cd; do
  "$DIR/gminer" -preset "$PRESET" -scale "$SCALE" -app "$app" \
    -workers "$WORKERS" -threads "$THREADS" -out "$DIR/$app.ref.txt" \
    | tee "$DIR/$app.ref.log" | grep -E 'aggregate|records' || true
  grep -oE 'aggregate: +.*' "$DIR/$app.ref.log" | awk '{print $2}' \
    > "$DIR/$app.ref.agg" || true
done

echo "== start daemon"
"$DIR/gminerd" -preset "$PRESET" -scale "$SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 4 \
  > "$DIR/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "daemon never became healthy"; cat "$DIR/daemon.log"; exit 1;
}

echo "== submit 3 concurrent jobs"
for app in tc gm cd; do
  curl -sf -X POST "http://$ADDR/jobs" \
    -H 'Content-Type: application/json' \
    -d "{\"app\":\"$app\",\"id\":\"$app\"}" >/dev/null
done

echo "== submit + cancel a 4th mid-flight"
curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"mcf","id":"victim"}' >/dev/null
curl -sf -X DELETE "http://$ADDR/jobs/victim" >/dev/null

echo "== await terminal states"
await() {
  local id=$1 deadline=$((SECONDS + 120))
  while [ "$SECONDS" -lt "$deadline" ]; do
    state="$(curl -sf "http://$ADDR/jobs/$id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
    case "$state" in done|failed|cancelled) echo "$state"; return 0 ;; esac
    sleep 0.1
  done
  echo "timeout"; return 1
}
for app in tc gm cd; do
  state="$(await "$app")"
  [ "$state" = done ] || { echo "job $app ended $state"; cat "$DIR/daemon.log"; exit 1; }
done
vstate="$(await victim)"
case "$vstate" in
  cancelled) echo "victim cancelled mid-flight" ;;
  done)      echo "victim finished before cancel landed (race, acceptable)" ;;
  *)         echo "victim ended $vstate"; exit 1 ;;
esac

echo "== byte-identical records vs single-shot"
for app in tc gm cd; do
  curl -sf "http://$ADDR/jobs/$app/result?format=text" > "$DIR/$app.served.txt"
  diff "$DIR/$app.ref.txt" "$DIR/$app.served.txt" \
    || { echo "job $app records diverge from single-shot run"; exit 1; }
done

echo "== identical aggregates"
for app in tc gm; do
  served="$(curl -sf "http://$ADDR/jobs/$app/result" \
    | sed -n 's/.*"aggregate":"\([^"]*\)".*/\1/p')"
  ref="$(cat "$DIR/$app.ref.agg")"
  [ "$served" = "$ref" ] \
    || { echo "job $app aggregate: served '$served' != single-shot '$ref'"; exit 1; }
done

echo "== daemon healthy, cancelled job fully drained"
curl -sf "http://$ADDR/healthz" | grep -q '"status":"ok"' \
  || { echo "daemon unhealthy after cancel"; exit 1; }
active="$(curl -sf "http://$ADDR/metrics" | awk '/^gminer_jobs_active /{print $2}')"
[ "$active" = 0 ] || { echo "gminer_jobs_active=$active, want 0"; exit 1; }

echo "== graceful shutdown releases the port"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
grep -q "shutdown complete" "$DIR/daemon.log" \
  || { echo "daemon did not shut down gracefully"; cat "$DIR/daemon.log"; exit 1; }
DAEMON_PID=""

"$DIR/gminerd" -preset "$PRESET" -scale "$SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" \
  > "$DIR/daemon2.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null \
  || { echo "restart on the same port failed"; cat "$DIR/daemon2.log"; exit 1; }
kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""

echo "server smoke: OK"
