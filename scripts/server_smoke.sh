#!/usr/bin/env bash
# server_smoke.sh — end-to-end serving-mode smoke test.
#
# Starts a gminerd daemon over one warm cluster, submits three concurrent
# jobs (tc, gm, cd), and requires every served result to be byte-identical
# to the single-shot CLI run of the same spec on the same dataset. A
# fourth job is cancelled mid-flight and must drain without disturbing the
# daemon (healthz stays ok, gminer_jobs_active returns to 0). A repeat of
# the tc spec must then be answered from the result cache: instantly done,
# marked cached, byte-identical records. Finally the daemon is SIGTERMed
# and must release its port for an immediate rebind, on which a
# single-slot daemon proves weighted-fair scheduling: a second tenant's
# job overtakes a hog tenant's backlog instead of starving behind it.
set -euo pipefail

PRESET="${PRESET:-dblp-s}"
SCALE="${SCALE:-0.5}"
# The fairness daemon mines a larger graph so each mcf job runs ~1s —
# long enough for the hog's backlog to be observably queued while the
# light tenant's job overtakes it.
FAIR_SCALE="${FAIR_SCALE:-16}"
PORT="${PORT:-17077}"
ADDR="127.0.0.1:${PORT}"
WORKERS=3
THREADS=2
DIR="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/gminer" ./cmd/gminer
go build -o "$DIR/gminerd" ./cmd/gminerd

echo "== single-shot references"
for app in tc gm cd; do
  "$DIR/gminer" -preset "$PRESET" -scale "$SCALE" -app "$app" \
    -workers "$WORKERS" -threads "$THREADS" -out "$DIR/$app.ref.txt" \
    | tee "$DIR/$app.ref.log" | grep -E 'aggregate|records' || true
  grep -oE 'aggregate: +.*' "$DIR/$app.ref.log" | awk '{print $2}' \
    > "$DIR/$app.ref.agg" || true
done

echo "== start daemon"
"$DIR/gminerd" -preset "$PRESET" -scale "$SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 4 \
  > "$DIR/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "daemon never became healthy"; cat "$DIR/daemon.log"; exit 1;
}

echo "== submit 3 concurrent jobs"
for app in tc gm cd; do
  curl -sf -X POST "http://$ADDR/jobs" \
    -H 'Content-Type: application/json' \
    -d "{\"app\":\"$app\",\"id\":\"$app\"}" >/dev/null
done

echo "== submit + cancel a 4th mid-flight"
curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"mcf","id":"victim"}' >/dev/null
curl -sf -X DELETE "http://$ADDR/jobs/victim" >/dev/null

echo "== await terminal states"
await() {
  local id=$1 deadline=$((SECONDS + 120))
  while [ "$SECONDS" -lt "$deadline" ]; do
    state="$(curl -sf "http://$ADDR/jobs/$id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
    case "$state" in done|failed|cancelled|preempted|shed) echo "$state"; return 0 ;; esac
    sleep 0.1
  done
  echo "timeout"; return 1
}
for app in tc gm cd; do
  state="$(await "$app")"
  [ "$state" = done ] || { echo "job $app ended $state"; cat "$DIR/daemon.log"; exit 1; }
done
vstate="$(await victim)"
case "$vstate" in
  cancelled) echo "victim cancelled mid-flight" ;;
  done)      echo "victim finished before cancel landed (race, acceptable)" ;;
  *)         echo "victim ended $vstate"; exit 1 ;;
esac

echo "== byte-identical records vs single-shot"
for app in tc gm cd; do
  curl -sf "http://$ADDR/jobs/$app/result?format=text" > "$DIR/$app.served.txt"
  diff "$DIR/$app.ref.txt" "$DIR/$app.served.txt" \
    || { echo "job $app records diverge from single-shot run"; exit 1; }
done

echo "== identical aggregates"
for app in tc gm; do
  served="$(curl -sf "http://$ADDR/jobs/$app/result" \
    | sed -n 's/.*"aggregate":"\([^"]*\)".*/\1/p')"
  ref="$(cat "$DIR/$app.ref.agg")"
  [ "$served" = "$ref" ] \
    || { echo "job $app aggregate: served '$served' != single-shot '$ref'"; exit 1; }
done

echo "== repeat query served from the result cache"
repeat="$(curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"tc","id":"tc-again","tenant":"cachetest"}')"
echo "$repeat" | grep -q '"state":"done"' \
  || { echo "repeat tc job not instantly done: $repeat"; exit 1; }
echo "$repeat" | grep -q '"cached":true' \
  || { echo "repeat tc job not marked cached: $repeat"; exit 1; }
curl -sf "http://$ADDR/jobs/tc-again/result?format=text" > "$DIR/tc.cached.txt"
diff "$DIR/tc.ref.txt" "$DIR/tc.cached.txt" \
  || { echo "cached tc records diverge from the original run"; exit 1; }
hits="$(curl -sf "http://$ADDR/metrics" | awk '/^gminer_result_cache_hits_total /{print $2}')"
[ "${hits:-0}" -ge 1 ] || { echo "gminer_result_cache_hits_total=$hits, want >=1"; exit 1; }

echo "== daemon healthy, cancelled job fully drained"
curl -sf "http://$ADDR/healthz" | grep -q '"status":"ok"' \
  || { echo "daemon unhealthy after cancel"; exit 1; }
active="$(curl -sf "http://$ADDR/metrics" | awk '/^gminer_jobs_active /{print $2}')"
[ "$active" = 0 ] || { echo "gminer_jobs_active=$active, want 0"; exit 1; }

echo "== graceful shutdown releases the port"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
grep -q "shutdown complete" "$DIR/daemon.log" \
  || { echo "daemon did not shut down gracefully"; cat "$DIR/daemon.log"; exit 1; }
DAEMON_PID=""

"$DIR/gminerd" -preset "$PRESET" -scale "$FAIR_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 1 \
  > "$DIR/daemon2.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null \
  || { echo "restart on the same port failed"; cat "$DIR/daemon2.log"; exit 1; }

echo "== weighted-fair scheduling: light tenant overtakes the hog's backlog"
# The hog grabs the single slot and queues a 3-deep backlog of slow jobs;
# the light tenant then submits one job. Freeing the slot must dispatch
# the light tenant's job next (its virtual clock lags the hog's), so when
# it completes, the tail of the hog's backlog is still queued — FIFO would
# have run the whole backlog first.
curl -sf -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
  -d '{"app":"mcf","id":"hog-slot","tenant":"hog"}' >/dev/null
for i in 1 2 3; do
  curl -sf -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
    -d "{\"app\":\"mcf\",\"id\":\"hog-$i\",\"tenant\":\"hog\"}" >/dev/null
done
curl -sf -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
  -d '{"app":"tc","id":"light-1","tenant":"light"}' >/dev/null
queued_hog="$(curl -sf "http://$ADDR/metrics" \
  | awk '/^gminer_jobs_queued\{tenant="hog"\} /{print $2}')"
[ "${queued_hog:-0}" = 3 ] \
  || { echo "gminer_jobs_queued{tenant=\"hog\"}=$queued_hog, want 3"; exit 1; }
curl -sf -X DELETE "http://$ADDR/jobs/hog-slot" >/dev/null
lstate="$(await light-1)"
[ "$lstate" = done ] || { echo "light-1 ended $lstate"; cat "$DIR/daemon2.log"; exit 1; }
h3state="$(curl -sf "http://$ADDR/jobs/hog-3" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
[ "$h3state" = queued ] \
  || { echo "hog-3 is $h3state when light-1 finished: light tenant did not overtake"; exit 1; }
echo "light-1 done while hog backlog tail still queued"
for i in 1 2 3; do
  curl -sf -X DELETE "http://$ADDR/jobs/hog-$i" >/dev/null 2>&1 || true
done

kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""

echo "server smoke: OK"
