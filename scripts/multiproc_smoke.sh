#!/usr/bin/env bash
# multiproc_smoke.sh — end-to-end multi-process cluster smoke test.
#
# Phase A: starts a gminerd coordinator plus 3 gminer-worker processes
# (separate OS processes over real TCP sockets), submits three concurrent
# jobs (tc, gm, cd) and requires every served result — records and
# aggregates — to be byte-identical to the single-shot CLI run of the same
# spec on the same dataset.
#
# Phase B: on a larger graph, launches a checkpointing cd job, SIGKILLs
# the worker process holding slot $KILL_INDEX mid-job, starts a
# replacement process claiming the same slot and checkpoint directory, and
# requires the job to complete with records byte-identical to a fault-free
# single-shot run. KILL_INDEX defaults to 1; the chaos-nightly sweep runs
# the script once per slot.
#
# Phase C: rolling restart. With the same checkpointing job shape running,
# SIGTERMs every worker process in sequence — each drains (barrier
# checkpoint, wait for the epoch to commit, detach), exits cleanly, and is
# replaced by a fresh process re-admitted at the next slot generation —
# and requires the job to complete byte-identically. ROLLING_DELAY (a
# sleep inserted after the first epoch commits, default 0) lets the
# chaos-nightly sweep land the first SIGTERM at varied points of the
# checkpoint barrier window.
#
# Phase D: coordinator crash. SIGKILLs the whole cluster — coordinator
# included — mid-job, restarts gminerd with -resume on the same checkpoint
# directory, restarts the workers on their checkpoint directories, and
# requires the held job to be resubmitted automatically and to finish
# byte-identically.
#
# On failure (any failure: set -e + ERR trap), logs are copied to $LOGDIR
# when set — CI uploads that directory as an artifact.
set -euo pipefail

PRESET="${PRESET:-dblp-s}"
SCALE="${SCALE:-0.5}"
KILL_SCALE="${KILL_SCALE:-32}"
KILL_INDEX="${KILL_INDEX:-1}"
ROLLING_DELAY="${ROLLING_DELAY:-0}"
PORT="${PORT:-17177}"
CLUSTER_PORT="${CLUSTER_PORT:-17178}"
ADDR="127.0.0.1:${PORT}"
CADDR="127.0.0.1:${CLUSTER_PORT}"
WORKERS=3
THREADS=2
DIR="$(mktemp -d)"
PIDS=()

save_logs() {
  if [ -n "${LOGDIR:-}" ]; then
    mkdir -p "$LOGDIR"
    cp "$DIR"/*.log "$LOGDIR"/ 2>/dev/null || true
  fi
}
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap 'save_logs' ERR
trap cleanup EXIT

wait_healthy() {
  # Healthy here means HTTP 200: in multi-process mode /healthz is 503
  # ("degraded") until every worker slot has joined.
  local tries=$1
  for _ in $(seq 1 "$tries"); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  return 1
}

await() {
  local id=$1 deadline=$((SECONDS + 300))
  while [ "$SECONDS" -lt "$deadline" ]; do
    state="$(curl -sf "http://$ADDR/jobs/$id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
    case "$state" in done|failed|cancelled|preempted|shed) echo "$state"; return 0 ;; esac
    sleep 0.2
  done
  echo "timeout"; return 1
}

echo "== build"
go build -o "$DIR/gminer" ./cmd/gminer
go build -o "$DIR/gminerd" ./cmd/gminerd
go build -o "$DIR/gminer-worker" ./cmd/gminer-worker

echo "== phase A: single-shot references"
for app in tc gm cd; do
  "$DIR/gminer" -preset "$PRESET" -scale "$SCALE" -app "$app" \
    -workers "$WORKERS" -threads "$THREADS" -out "$DIR/$app.ref.txt" \
    > "$DIR/$app.ref.log" 2>&1
  grep -oE 'aggregate: +.*' "$DIR/$app.ref.log" | awk '{print $2}' \
    > "$DIR/$app.ref.agg" || true
done
[ -s "$DIR/cd.ref.txt" ] || { echo "degenerate cd reference: no records"; exit 1; }

echo "== phase A: start coordinator + $WORKERS worker processes"
"$DIR/gminerd" -preset "$PRESET" -scale "$SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 4 \
  -cluster-listen "$CADDR" \
  > "$DIR/coord-a.log" 2>&1 &
PIDS+=($!); disown $! 2>/dev/null || true
for i in $(seq 0 $((WORKERS - 1))); do
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" \
    > "$DIR/worker-a$i.log" 2>&1 &
  PIDS+=($!); disown $! 2>/dev/null || true
done
wait_healthy 150 || {
  echo "multi-process daemon never became healthy"
  tail -40 "$DIR"/coord-a.log "$DIR"/worker-a*.log; exit 1;
}

echo "== phase A: healthz reports every worker slot up"
health="$(curl -s "http://$ADDR/healthz")"
echo "$health" | grep -q '"status":"ok"' || { echo "healthz not ok: $health"; exit 1; }
up="$(curl -s "http://$ADDR/metrics" | grep -c '^gminer_cluster_worker_up{[^}]*} 1$')" || true
[ "$up" = "$WORKERS" ] || { echo "gminer_cluster_worker_up: $up of $WORKERS up"; exit 1; }

echo "== phase A: 3 concurrent jobs, byte-identical to single-shot"
for app in tc gm cd; do
  curl -sf -X POST "http://$ADDR/jobs" \
    -H 'Content-Type: application/json' \
    -d "{\"app\":\"$app\",\"id\":\"$app\"}" >/dev/null
done
for app in tc gm cd; do
  state="$(await "$app")"
  [ "$state" = done ] || {
    echo "job $app ended $state"
    tail -40 "$DIR"/coord-a.log "$DIR"/worker-a*.log; exit 1;
  }
  curl -sf "http://$ADDR/jobs/$app/result?format=text" > "$DIR/$app.served.txt"
  diff "$DIR/$app.ref.txt" "$DIR/$app.served.txt" \
    || { echo "job $app records diverge from single-shot run"; exit 1; }
done
for app in tc gm; do
  served="$(curl -sf "http://$ADDR/jobs/$app/result" \
    | sed -n 's/.*"aggregate":"\([^"]*\)".*/\1/p')"
  ref="$(cat "$DIR/$app.ref.agg")"
  [ "$served" = "$ref" ] \
    || { echo "job $app aggregate: served '$served' != single-shot '$ref'"; exit 1; }
done
echo "phase A OK: served records byte-identical across process boundaries"

echo "== phase A: teardown"
for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
PIDS=()

echo "== phase B: single-shot reference (scale $KILL_SCALE)"
"$DIR/gminer" -preset "$PRESET" -scale "$KILL_SCALE" -app cd \
  -workers "$WORKERS" -threads "$THREADS" -out "$DIR/kill.ref.txt" \
  > "$DIR/kill.ref.log" 2>&1
[ -s "$DIR/kill.ref.txt" ] || { echo "degenerate kill reference: no records"; exit 1; }

echo "== phase B: start checkpointing cluster"
mkdir -p "$DIR/coord-ckpt" "$DIR/wckpt"
"$DIR/gminerd" -preset "$PRESET" -scale "$KILL_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 1 \
  -cluster-listen "$CADDR" -checkpoint-dir "$DIR/coord-ckpt" \
  > "$DIR/coord-b.log" 2>&1 &
COORD_PID=$!
PIDS+=($COORD_PID); disown $COORD_PID 2>/dev/null || true
WPIDS=()
for i in $(seq 0 $((WORKERS - 1))); do
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" -checkpoint-dir "$DIR/wckpt/node-$i" \
    > "$DIR/worker-b$i.log" 2>&1 &
  WPIDS+=($!)
  PIDS+=($!); disown $! 2>/dev/null || true
done
wait_healthy 300 || {
  echo "phase B daemon never became healthy"
  tail -40 "$DIR"/coord-b.log "$DIR"/worker-b*.log; exit 1;
}

echo "== phase B: launch checkpointing cd job, SIGKILL worker $KILL_INDEX mid-job"
curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"cd","id":"kill","checkpoint_every_seconds":0.1}' >/dev/null
# Kill only after the first epoch commits (the coordinator's MANIFEST
# exists): a kill before any commit exercises plain restart, not recovery.
deadline=$((SECONDS + 120))
while [ ! -f "$DIR/coord-ckpt/kill/MANIFEST" ]; do
  state="$(curl -sf "http://$ADDR/jobs/kill" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
  [ "$state" = done ] && { echo "job finished before a checkpoint committed; raise KILL_SCALE"; exit 1; }
  [ "$SECONDS" -lt "$deadline" ] || { echo "no checkpoint within 120s"; exit 1; }
  sleep 0.1
done
kill -9 "${WPIDS[$KILL_INDEX]}"
echo "SIGKILLed worker process holding slot $KILL_INDEX (pid ${WPIDS[$KILL_INDEX]})"
state="$(curl -sf "http://$ADDR/jobs/kill" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
[ "$state" = done ] && { echo "job finished before the kill landed; raise KILL_SCALE"; exit 1; }

echo "== phase B: replacement claims slot $KILL_INDEX and its checkpoints"
"$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" \
  -coordinator "$CADDR" -node "$KILL_INDEX" -checkpoint-dir "$DIR/wckpt/node-$KILL_INDEX" \
  > "$DIR/worker-b$KILL_INDEX-replacement.log" 2>&1 &
PIDS+=($!); disown $! 2>/dev/null || true

state="$(await kill)"
[ "$state" = done ] || {
  echo "kill job ended $state"
  tail -40 "$DIR"/coord-b.log "$DIR"/worker-b*.log; exit 1;
}
curl -sf "http://$ADDR/jobs/kill/result?format=text" > "$DIR/kill.served.txt"
diff "$DIR/kill.ref.txt" "$DIR/kill.served.txt" \
  || { echo "records diverge after kill+recovery"; exit 1; }
grep -q "generation 2" "$DIR/coord-b.log" \
  || { echo "coordinator never re-admitted a generation-2 worker"; tail -40 "$DIR/coord-b.log"; exit 1; }
echo "phase B OK: job survived a SIGKILLed worker process, records byte-identical"

echo "== phase B: teardown"
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
PIDS=()

echo "== phase C: rolling SIGTERM restart of every worker slot"
mkdir -p "$DIR/coord-ckpt-c" "$DIR/wckpt-c"
"$DIR/gminerd" -preset "$PRESET" -scale "$KILL_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 1 \
  -cluster-listen "$CADDR" -checkpoint-dir "$DIR/coord-ckpt-c" \
  > "$DIR/coord-c.log" 2>&1 &
PIDS+=($!); disown $! 2>/dev/null || true
WPIDS=()
for i in $(seq 0 $((WORKERS - 1))); do
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" -checkpoint-dir "$DIR/wckpt-c/node-$i" \
    > "$DIR/worker-c$i.log" 2>&1 &
  WPIDS+=($!)
  PIDS+=($!); disown $! 2>/dev/null || true
done
wait_healthy 300 || {
  echo "phase C daemon never became healthy"
  tail -40 "$DIR"/coord-c.log "$DIR"/worker-c*.log; exit 1;
}
curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"cd","id":"rolling","checkpoint_every_seconds":0.1}' >/dev/null
deadline=$((SECONDS + 120))
while [ ! -f "$DIR/coord-ckpt-c/rolling/MANIFEST" ]; do
  state="$(curl -sf "http://$ADDR/jobs/rolling" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
  [ "$state" = done ] && { echo "job finished before a checkpoint committed; raise KILL_SCALE"; exit 1; }
  [ "$SECONDS" -lt "$deadline" ] || { echo "no checkpoint within 120s"; exit 1; }
  sleep 0.1
done
sleep "$ROLLING_DELAY"
for i in $(seq 0 $((WORKERS - 1))); do
  state="$(curl -sf "http://$ADDR/jobs/rolling" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
  [ "$state" = done ] && { echo "job finished before slot $i restarted; raise KILL_SCALE"; exit 1; }
  kill -TERM "${WPIDS[$i]}"
  # The worker drains: it requests a barrier checkpoint, waits for the
  # epoch to commit, detaches, and only then exits. The pid is disowned,
  # so `wait` would return immediately — poll for exit instead.
  drain_deadline=$((SECONDS + 90))
  while kill -0 "${WPIDS[$i]}" 2>/dev/null; do
    [ "$SECONDS" -lt "$drain_deadline" ] || {
      echo "worker $i never exited after SIGTERM"
      tail -20 "$DIR/worker-c$i.log"; exit 1;
    }
    sleep 0.1
  done
  grep -q "drain complete" "$DIR/worker-c$i.log" \
    || { echo "worker $i did not drain cleanly"; tail -20 "$DIR/worker-c$i.log"; exit 1; }
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" -checkpoint-dir "$DIR/wckpt-c/node-$i" \
    > "$DIR/worker-c$i-replacement.log" 2>&1 &
  WPIDS[$i]=$!
  PIDS+=($!); disown $! 2>/dev/null || true
  wait_healthy 300 || {
    echo "slot $i replacement never rejoined"
    tail -40 "$DIR"/coord-c.log "$DIR/worker-c$i-replacement.log"; exit 1;
  }
  echo "slot $i drained, detached and was replaced at the next generation"
done
state="$(await rolling)"
[ "$state" = done ] || {
  echo "rolling job ended $state"
  tail -40 "$DIR"/coord-c.log "$DIR"/worker-c*.log; exit 1;
}
curl -sf "http://$ADDR/jobs/rolling/result?format=text" > "$DIR/rolling.served.txt"
diff "$DIR/kill.ref.txt" "$DIR/rolling.served.txt" \
  || { echo "records diverge after rolling restart"; exit 1; }
grep -q "generation 2" "$DIR/coord-c.log" \
  || { echo "coordinator never re-admitted a generation-2 worker"; tail -40 "$DIR/coord-c.log"; exit 1; }
echo "phase C OK: job survived a rolling restart of every slot, records byte-identical"

echo "== phase C: teardown"
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
PIDS=()

echo "== phase D: coordinator crash + -resume"
mkdir -p "$DIR/coord-ckpt-d" "$DIR/wckpt-d"
"$DIR/gminerd" -preset "$PRESET" -scale "$KILL_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 1 \
  -cluster-listen "$CADDR" -checkpoint-dir "$DIR/coord-ckpt-d" \
  > "$DIR/coord-d.log" 2>&1 &
COORD_PID=$!
PIDS+=($COORD_PID); disown $COORD_PID 2>/dev/null || true
WPIDS=()
for i in $(seq 0 $((WORKERS - 1))); do
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" -checkpoint-dir "$DIR/wckpt-d/node-$i" \
    > "$DIR/worker-d$i.log" 2>&1 &
  WPIDS+=($!)
  PIDS+=($!); disown $! 2>/dev/null || true
done
wait_healthy 300 || {
  echo "phase D daemon never became healthy"
  tail -40 "$DIR"/coord-d.log "$DIR"/worker-d*.log; exit 1;
}
curl -sf -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"app":"cd","id":"held","checkpoint_every_seconds":0.1}' >/dev/null
deadline=$((SECONDS + 120))
while [ ! -f "$DIR/coord-ckpt-d/held/MANIFEST" ]; do
  state="$(curl -sf "http://$ADDR/jobs/held" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
  [ "$state" = done ] && { echo "job finished before a checkpoint committed; raise KILL_SCALE"; exit 1; }
  [ "$SECONDS" -lt "$deadline" ] || { echo "no checkpoint within 120s"; exit 1; }
  sleep 0.1
done
state="$(curl -sf "http://$ADDR/jobs/held" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
[ "$state" = done ] && { echo "job finished before the coordinator crash; raise KILL_SCALE"; exit 1; }
echo "SIGKILLing the whole cluster (coordinator pid $COORD_PID + workers) mid-job"
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
# The pids are disowned; poll for exit so the listen ports are free
# before the restarted coordinator binds them.
for pid in "${PIDS[@]}"; do
  while kill -0 "$pid" 2>/dev/null; do sleep 0.05; done
done
PIDS=()

echo "== phase D: restart coordinator with -resume, workers rejoin with held epochs"
"$DIR/gminerd" -preset "$PRESET" -scale "$KILL_SCALE" \
  -workers "$WORKERS" -threads "$THREADS" -addr "$ADDR" -max-jobs 1 \
  -cluster-listen "$CADDR" -checkpoint-dir "$DIR/coord-ckpt-d" -resume \
  > "$DIR/coord-d-resumed.log" 2>&1 &
PIDS+=($!); disown $! 2>/dev/null || true
for i in $(seq 0 $((WORKERS - 1))); do
  "$DIR/gminer-worker" -preset "$PRESET" -scale "$KILL_SCALE" \
    -workers "$WORKERS" -threads "$THREADS" \
    -coordinator "$CADDR" -node "$i" -checkpoint-dir "$DIR/wckpt-d/node-$i" \
    > "$DIR/worker-d$i-resumed.log" 2>&1 &
  PIDS+=($!); disown $! 2>/dev/null || true
done
wait_healthy 300 || {
  echo "resumed daemon never became healthy"
  tail -40 "$DIR"/coord-d-resumed.log "$DIR"/worker-d*-resumed.log; exit 1;
}
state="$(await held)"
[ "$state" = done ] || {
  echo "resumed job ended $state"
  tail -40 "$DIR"/coord-d-resumed.log "$DIR"/worker-d*-resumed.log; exit 1;
}
grep -q "resume: job held resubmitted" "$DIR/coord-d-resumed.log" \
  || { echo "coordinator did not resubmit the held job"; tail -40 "$DIR/coord-d-resumed.log"; exit 1; }
curl -sf "http://$ADDR/jobs/held/result?format=text" > "$DIR/held.served.txt"
diff "$DIR/kill.ref.txt" "$DIR/held.served.txt" \
  || { echo "records diverge after coordinator -resume"; exit 1; }
echo "phase D OK: job survived a full-cluster crash + coordinator -resume, records byte-identical"

echo "multiproc smoke: OK"
