#!/usr/bin/env bash
# mutation_smoke.sh — end-to-end dynamic-graph smoke test.
#
# Generates a seeded graph plus a replayable mutation stream from the same
# flags (gengraph -deltas), starts a gminerd -dynamic daemon over the
# graph, parks a standing cd query, and replays the stream one batch per
# epoch. At every epoch the standing job's accumulated match set must be
# byte-identical to a fresh snapshot job submitted after the mutation —
# the serving-layer half of the differential gate the Go test suite pins
# in-process. The epoch must also be visible everywhere the API surfaces
# it: the mutation response, /healthz, /metrics and the job status. A
# `gminer watch` stream runs across all epochs and its NDJSON documents
# (snapshot + deltas) must fold back into exactly the final match set.
set -euo pipefail

COMMUNITIES="${COMMUNITIES:-24}"
BRIDGES="${BRIDGES:-400}"
SEED="${SEED:-7}"
BATCHES="${BATCHES:-3}"
DELTA_OPS="${DELTA_OPS:-24}"
DELTA_SEED="${DELTA_SEED:-5}"
PORT="${PORT:-17087}"
ADDR="127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
DAEMON_PID=""
WATCH_PID=""

cleanup() {
  [ -n "$WATCH_PID" ] && kill -9 "$WATCH_PID" 2>/dev/null || true
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/gminer" ./cmd/gminer
go build -o "$DIR/gminerd" ./cmd/gminerd
go build -o "$DIR/gengraph" ./cmd/gengraph

echo "== generate graph + replayable mutation stream (same flags, same seed)"
# An attributed community graph, so the standing cd query has real
# matches to add and retract as mutations land.
GENFLAGS=(-type community -communities "$COMMUNITIES" -bridges "$BRIDGES" -seed "$SEED")
"$DIR/gengraph" "${GENFLAGS[@]}" -o "$DIR/base.graph"
"$DIR/gengraph" "${GENFLAGS[@]}" \
  -deltas "$BATCHES" -delta-ops "$DELTA_OPS" -delta-seed "$DELTA_SEED" \
  -o "$DIR/stream.ndjson"
[ "$(wc -l < "$DIR/stream.ndjson")" = "$BATCHES" ] \
  || { echo "stream has $(wc -l < "$DIR/stream.ndjson") batches, want $BATCHES"; exit 1; }
# Replayability: the stream is a pure function of graph + delta-seed.
"$DIR/gengraph" "${GENFLAGS[@]}" \
  -deltas "$BATCHES" -delta-ops "$DELTA_OPS" -delta-seed "$DELTA_SEED" \
  -o "$DIR/stream2.ndjson"
diff "$DIR/stream.ndjson" "$DIR/stream2.ndjson" \
  || { echo "mutation stream is not replayable"; exit 1; }

echo "== start dynamic daemon"
"$DIR/gminerd" -dynamic -graph "$DIR/base.graph" \
  -workers 3 -threads 2 -addr "$ADDR" -max-jobs 2 \
  > "$DIR/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "daemon never became healthy"; cat "$DIR/daemon.log"; exit 1;
}
curl -sf "http://$ADDR/healthz" | jq -e '.dynamic == true and .graph_epoch == 0' >/dev/null \
  || { echo "healthz not dynamic at epoch 0"; curl -s "http://$ADDR/healthz"; exit 1; }

await() { # await ID STATE...
  local id=$1; shift
  local deadline=$((SECONDS + 120)) state
  while [ "$SECONDS" -lt "$deadline" ]; do
    state="$(curl -sf "http://$ADDR/jobs/$id" | jq -r .state)"
    for want in "$@"; do
      [ "$state" = "$want" ] && { echo "$state"; return 0; }
    done
    case "$state" in failed|cancelled|preempted|shed) echo "$state"; return 1 ;; esac
    sleep 0.1
  done
  echo "timeout"; return 1
}

served_set() { # served_set ID FILE — the job's records, sorted
  curl -sf "http://$ADDR/jobs/$1/result?format=text" | sort > "$2"
}

echo "== park a standing cd query"
curl -sf -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
  -d '{"app":"cd","id":"stand","standing":true}' >/dev/null
state="$(await stand standing)" || { echo "standing job ended $state"; cat "$DIR/daemon.log"; exit 1; }
served_set stand "$DIR/stand-0.txt"
[ -s "$DIR/stand-0.txt" ] \
  || { echo "baseline found no matches; the differential check would be vacuous"; exit 1; }
echo "baseline: $(wc -l < "$DIR/stand-0.txt") matches at epoch 0"

echo "== epoch pin: a submit pinned to a future epoch is rejected with 409"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/jobs" \
  -H 'Content-Type: application/json' -d '{"app":"tc","id":"pinned","epoch":99}')"
[ "$code" = 409 ] || { echo "epoch-pinned submit returned $code, want 409"; exit 1; }

echo "== follow the delta stream across all epochs"
"$DIR/gminer" watch -addr "$ADDR" -raw stand > "$DIR/watch.ndjson" &
WATCH_PID=$!
sleep 0.3

i=0
while IFS= read -r batch; do
  i=$((i + 1))
  echo "== epoch $i: mutate, then compare standing vs snapshot"
  resp="$(curl -sf -X POST "http://$ADDR/graph/mutations" \
    -H 'Content-Type: application/json' -d "$batch")" \
    || { echo "mutation batch $i rejected"; cat "$DIR/daemon.log"; exit 1; }
  echo "$resp" | jq -e ".epoch == $i" >/dev/null \
    || { echo "batch $i: epoch $(echo "$resp" | jq .epoch), want $i"; exit 1; }
  echo "$resp" | jq -c '{epoch, stats, dirty_blocks, moved_blocks, rebuilt_workers}'

  # The epoch is visible on every surface.
  curl -sf "http://$ADDR/healthz" | jq -e ".graph_epoch == $i" >/dev/null \
    || { echo "healthz epoch != $i"; exit 1; }
  epoch_metric="$(curl -sf "http://$ADDR/metrics" | awk '/^gminer_graph_epoch /{print $2}')"
  [ "$epoch_metric" = "$i" ] || { echo "gminer_graph_epoch=$epoch_metric, want $i"; exit 1; }

  # Differential gate, serving half: the standing job's accumulated set
  # must equal a from-scratch snapshot of the mutated graph.
  curl -sf -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
    -d "{\"app\":\"cd\",\"id\":\"snap-$i\"}" >/dev/null
  state="$(await "snap-$i" done)" || { echo "snap-$i ended $state"; cat "$DIR/daemon.log"; exit 1; }
  served_set "snap-$i" "$DIR/snap-$i.txt"
  served_set stand "$DIR/stand-$i.txt"
  diff "$DIR/snap-$i.txt" "$DIR/stand-$i.txt" \
    || { echo "epoch $i: standing set diverges from snapshot recompute"; exit 1; }
  echo "epoch $i: standing set == snapshot ($(wc -l < "$DIR/snap-$i.txt") matches)"
done < "$DIR/stream.ndjson"

echo "== job status carries the epoch and round count"
curl -sf "http://$ADDR/jobs/stand" \
  | jq -e ".graph_epoch == $BATCHES and .delta_rounds == $BATCHES" >/dev/null \
  || { echo "standing status wrong"; curl -s "http://$ADDR/jobs/stand"; exit 1; }
rounds="$(curl -sf "http://$ADDR/metrics" | awk '/^gminer_standing_rounds_total /{print $2}')"
[ "${rounds:-0}" -ge "$BATCHES" ] \
  || { echo "gminer_standing_rounds_total=$rounds, want >=$BATCHES"; exit 1; }

echo "== unsubscribe ends the watch stream"
curl -sf -X DELETE "http://$ADDR/jobs/stand" | jq -e '.state == "cancelled"' >/dev/null \
  || { echo "standing job did not cancel"; exit 1; }
wait "$WATCH_PID" 2>/dev/null || true
WATCH_PID=""

echo "== watch stream folds back into the final match set"
docs="$(wc -l < "$DIR/watch.ndjson")"
[ "$docs" = $((BATCHES + 1)) ] \
  || { echo "watch stream has $docs documents, want snapshot + $BATCHES deltas"; cat "$DIR/watch.ndjson"; exit 1; }
head -1 "$DIR/watch.ndjson" | jq -e '.type == "snapshot"' >/dev/null \
  || { echo "watch stream does not open with a snapshot"; exit 1; }
jq -r -s '
  reduce .[] as $d ([];
    if $d.type == "snapshot" then $d.records // []
    elif $d.type == "delta" then (. - ($d.retracted // [])) + ($d.added // [])
    else . end)
  | .[]' "$DIR/watch.ndjson" | sort > "$DIR/reconstructed.txt"
diff "$DIR/reconstructed.txt" "$DIR/snap-$BATCHES.txt" \
  || { echo "watch-stream reconstruction diverges from the final snapshot"; exit 1; }
echo "reconstructed $(wc -l < "$DIR/reconstructed.txt") matches from snapshot + $BATCHES deltas"

kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""

echo "mutation smoke: OK"
