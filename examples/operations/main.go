// Operations: the full production-shaped job flow — the input graph lives
// on the mini distributed filesystem, the job runs with checkpointing and
// task stealing enabled, live progress is served over HTTP, and the
// results are written back to the DFS (§5.1's HDFS round trip).
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/dfs"
	"gminer/internal/gen"
	"gminer/internal/monitor"
)

func main() {
	// 1. Ingest: store the dataset on the replicated DFS.
	fs, err := dfs.New(dfs.Config{DataNodes: 3, Replication: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := dfs.SaveGraph(fs, "/datasets/orkut-s", gen.MustBuild(gen.Orkut, 0.5)); err != nil {
		log.Fatal(err)
	}

	// 2. Load (a datanode fails; replicas cover it).
	fs.KillDataNode(2)
	g, err := dfs.LoadGraph(fs, "/datasets/orkut-s", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d vertices / %d edges from DFS (1 datanode down)\n",
		g.NumVertices(), g.NumEdges())

	// 3. Run maximum clique finding with the full production config.
	job, err := gminer.Start(g, algo.NewMaxClique(), gminer.Config{
		Workers:         4,
		Threads:         2,
		Stealing:        true,
		UseLSH:          true,
		CheckpointEvery: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Serve live progress over HTTP while the job runs.
	mon := monitor.New(job)
	addr, err := mon.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Stop()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("live status from http://%s/status (%d bytes of JSON)\n", addr, len(body))

	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max clique: %v (in %v, %d tasks, %d stolen)\n",
		res.AggGlobal, res.Elapsed, res.Total.TasksDone, res.Total.Stolen)

	// 5. Dump results back to the DFS.
	if err := dfs.SaveRecords(fs, "/results/mcf", res.Records); err != nil {
		log.Fatal(err)
	}
	back, err := dfs.LoadRecords(fs, "/results/mcf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d witness records to /results/mcf and read them back ✓\n", len(back))
}
