// Clustering: FocusCO-style focused graph clustering (the GC workload of
// §8): given user exemplars, learn focus-attribute weights and grow the
// clusters that match the user's interest — ignoring the rest of the
// graph.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/gen"
)

func main() {
	g, truth := gen.Community(gen.CommunityConfig{
		Communities: 30,
		MinSize:     10,
		MaxSize:     14,
		PIn:         0.8,
		Bridges:     200,
		Seed:        21,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The "user preference": two exemplar members of planted community 0.
	var exemplars [][]int32
	g.ForEach(func(v *gminer.Vertex) bool {
		if truth[v.ID] == 0 && len(exemplars) < 2 {
			exemplars = append(exemplars, v.Attrs)
		}
		return true
	})

	gc := algo.NewGraphCluster(exemplars, 0.8, 0.3, 4)
	res, err := gminer.Run(g, gc, gminer.Config{Workers: 4, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("focused clusters: %d (in %v)\n", len(res.Records), res.Elapsed)
	for _, rec := range res.Records {
		fmt.Println("  " + rec)
	}
	if len(res.Records) == 0 {
		log.Fatal("expected at least one focused cluster")
	}
	fmt.Println("\nnote: only clusters whose attributes match the exemplars are")
	fmt.Println("grown — the other planted communities are never explored.")
}
