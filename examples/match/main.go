// Match: count occurrences of a labeled tree pattern in a synthetic
// social network — the GM workload of §8 with the Figure 1 query pattern
// and a custom pattern built from the public API.
//
//	go run ./examples/match
package main

import (
	"fmt"
	"log"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/gen"
)

func main() {
	// Labeled social graph: labels {a..g} assigned uniformly, as in the
	// paper's GM experiments.
	g, err := gen.BuildLabeled(gen.Orkut, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, 7 labels\n", g.NumVertices(), g.NumEdges())

	// The Figure 1 pattern: a → (b, c); c → (b, d).
	figure := algo.FigurePattern()
	run(g, "figure-1 pattern", figure)

	// A custom pattern: a path a → b → c.
	path := algo.PathPattern(0, 1, 2)
	run(g, "path a-b-c", path)
}

func run(g *gminer.Graph, name string, p *algo.Pattern) {
	res, err := gminer.Run(g, algo.NewGraphMatch(p), gminer.Config{
		Workers: 4,
		Threads: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	matched := res.AggGlobal.(int64)
	fmt.Printf("%-18s matched %-12d (%v, cache hit %.0f%%)\n",
		name, matched, res.Elapsed, 100*res.Total.CacheHitRate())

	if want := algo.RefMatchCount(g, p); matched != want {
		log.Fatalf("MISMATCH on %s: distributed %d vs reference %d", name, matched, want)
	}
}
