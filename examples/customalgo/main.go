// Customalgo: how to write a new mining algorithm on the G-Miner
// programming framework (§5.2). This implements k-clique counting
// (here k=4) in ~60 lines: Seed creates one task per vertex over its
// higher neighbors, and Update — after one pull round — counts 4-cliques
// in the induced neighborhood.
//
//	go run ./examples/customalgo
package main

import (
	"fmt"
	"log"

	"gminer"
	"gminer/internal/gen"
)

// kCliqueCount counts cliques of size K. It implements gminer.Algorithm.
type kCliqueCount struct {
	gminer.NoContext // tasks carry no extra context
	K                int
}

func (a *kCliqueCount) Name() string { return fmt.Sprintf("%d-clique", a.K) }

// Aggregator sums per-task counts into the global result.
func (a *kCliqueCount) Aggregator() gminer.Aggregator {
	return sumAgg{}
}

// Seed: one task per vertex v; candidates are the neighbors above v, so
// every clique is counted exactly once (at its minimum vertex).
func (a *kCliqueCount) Seed(v *gminer.Vertex, spawn func(*gminer.Task)) {
	var cands []gminer.VertexID
	for _, u := range v.Adj {
		if u > v.ID {
			cands = append(cands, u)
		}
	}
	if len(cands) < a.K-1 {
		return
	}
	t := &gminer.Task{}
	t.Subgraph.AddVertex(v.ID)
	t.Cands = cands
	spawn(t)
}

// Update: the runtime has pulled every candidate (local or remote), so we
// hold the full induced neighborhood and can enumerate (K-1)-cliques
// among the candidates. Not calling t.Pull ends the task.
func (a *kCliqueCount) Update(t *gminer.Task, cands []*gminer.Vertex, env gminer.Env) {
	// Build candidate adjacency restricted to the candidate set.
	idx := make(map[gminer.VertexID]int, len(t.Cands))
	for i, id := range t.Cands {
		idx[id] = i
	}
	adj := make([][]int, len(t.Cands))
	for i, v := range cands {
		if v == nil {
			continue
		}
		for _, nb := range v.Adj {
			if j, ok := idx[nb]; ok && j > i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	var count int64
	var extend func(members []int, candidates []int)
	extend = func(members []int, candidates []int) {
		if len(members) == a.K-1 {
			count++
			return
		}
		for _, c := range candidates {
			var next []int
			for _, d := range candidates {
				if d > c && contains(adj[c], d) {
					next = append(next, d)
				}
			}
			extend(append(members, c), next)
		}
	}
	all := make([]int, len(t.Cands))
	for i := range all {
		all[i] = i
	}
	extend(nil, all)
	if count > 0 {
		env.AggUpdate(count)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sumAgg is a minimal Aggregator: a global int64 sum.
type sumAgg struct{}

func (sumAgg) Zero() any                          { return int64(0) }
func (sumAgg) Add(p, v any) any                   { return p.(int64) + v.(int64) }
func (sumAgg) Merge(a, b any) any                 { return a.(int64) + b.(int64) }
func (sumAgg) Encode(w *gminer.WireWriter, v any) { w.Varint(v.(int64)) }
func (sumAgg) Decode(r *gminer.WireReader) any    { return r.Varint() }

func main() {
	g := gen.MustBuild(gen.Skitter, 0.4)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	res, err := gminer.Run(g, &kCliqueCount{K: 4}, gminer.Config{Workers: 4, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cliques: %d (in %v)\n", res.AggGlobal.(int64), res.Elapsed)
}
