// Quickstart: count triangles on a generated power-law graph with the
// G-Miner runtime and check the answer against the sequential reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/gen"
)

func main() {
	// A scaled-down stand-in for the paper's Skitter dataset.
	g := gen.MustBuild(gen.Skitter, 0.5)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	res, err := gminer.Run(g, algo.NewTriangleCount(), gminer.Config{
		Workers: 4,
		Threads: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	triangles := res.AggGlobal.(int64)
	fmt.Printf("triangles:     %d\n", triangles)
	fmt.Printf("mining time:   %v\n", res.Elapsed)
	fmt.Printf("tasks done:    %d\n", res.Total.TasksDone)
	fmt.Printf("network bytes: %d\n", res.Total.NetBytes)

	// Cross-check with the single-threaded reference implementation.
	if want := algo.RefTriangles(g); triangles != want {
		log.Fatalf("MISMATCH: distributed %d vs reference %d", triangles, want)
	}
	fmt.Println("matches the sequential reference ✓")
}
