// Community: detect attribute-coherent dense communities (the CD workload
// of §8) in a planted-partition graph, and score recall against the
// generator's ground truth.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"gminer"
	"gminer/internal/algo"
	"gminer/internal/gen"
	"gminer/internal/graph"
)

func main() {
	g, truth := gen.Community(gen.CommunityConfig{
		Communities: 40,
		MinSize:     8,
		MaxSize:     16,
		PIn:         0.7,
		Bridges:     400,
		Seed:        11,
	})
	fmt.Printf("graph: %d vertices, %d edges, %d planted communities\n",
		g.NumVertices(), g.NumEdges(), 40)

	cd := algo.NewCommunityDetect(0.6, 5)
	res, err := gminer.Run(g, cd, gminer.Config{Workers: 4, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d communities in %v (peak mem %d KB)\n",
		len(res.Records), res.Elapsed, res.Total.PeakBytes/1024)

	// Score: a detected community is "pure" if all members share one
	// planted community.
	pure := 0
	for _, rec := range res.Records {
		members := parseMembers(rec)
		home := truth[members[0]]
		ok := true
		for _, m := range members[1:] {
			if truth[m] != home {
				ok = false
				break
			}
		}
		if ok {
			pure++
		}
	}
	fmt.Printf("purity: %d/%d detected communities lie inside one planted community\n",
		pure, len(res.Records))
	for i, rec := range res.Records {
		if i >= 5 {
			fmt.Printf("... and %d more\n", len(res.Records)-5)
			break
		}
		fmt.Println("  " + rec)
	}
}

// parseMembers extracts vertex IDs from "community size=N: id id id".
func parseMembers(rec string) []graph.VertexID {
	colon := strings.Index(rec, ": ")
	var out []graph.VertexID
	for _, f := range strings.Fields(rec[colon+2:]) {
		x, _ := strconv.ParseInt(f, 10, 64)
		out = append(out, graph.VertexID(x))
	}
	return out
}
