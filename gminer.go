// Package gminer is a Go reproduction of G-Miner, the task-oriented
// distributed graph mining system of Chen et al. (EuroSys 2018).
//
// A mining job decomposes into independent tasks, each carrying an
// intermediate subgraph, a candidate vertex list and algorithm context
// (§4.2 of the paper). Per worker, a task pipeline overlaps CPU
// computation, candidate pulling over the network and disk spilling of
// the task store (§4.3), with an LSH-ordered task priority queue and a
// reference-counting vertex cache raising locality (§7). Static load
// balance comes from BDG partitioning (§6.1) and dynamic balance from
// master-mediated task stealing (§6.2).
//
// Quickstart (count triangles on a generated graph):
//
//	g := gen.MustBuild(gen.Skitter, 1.0)
//	res, err := gminer.Run(g, algo.NewTriangleCount(), gminer.Config{
//		Workers: 4, Threads: 4,
//	})
//	fmt.Println(res.AggGlobal) // total triangles
//
// Custom algorithms implement the Algorithm interface: Seed creates tasks
// from local vertices, Update advances a task one round, pulling the next
// round's candidates with Task.Pull. See internal/algo for five complete
// applications (TC, MCF, GM, CD, GC) and examples/customalgo for a
// walkthrough.
package gminer

import (
	"gminer/internal/cluster"
	"gminer/internal/core"
	"gminer/internal/graph"
	"gminer/internal/wire"
)

// Core model types (see internal/core).
type (
	// Task is one unit of mining work: subgraph + candidates + context.
	Task = core.Task
	// Subgraph is the intermediate subgraph carried by a task.
	Subgraph = core.Subgraph
	// Algorithm is the user programming framework: Seed + Update + the
	// context codec.
	Algorithm = core.Algorithm
	// Aggregator performs global aggregation across workers.
	Aggregator = core.Aggregator
	// Env is the runtime interface visible to Seed/Update.
	Env = core.Env
	// ContextCodec serializes algorithm-specific task context.
	ContextCodec = core.ContextCodec
	// NoContext is a ContextCodec for context-free algorithms.
	NoContext = core.NoContext
	// WireWriter / WireReader are the binary codec used by ContextCodec
	// and Aggregator implementations.
	WireWriter = wire.Writer
	WireReader = wire.Reader
)

// Graph model types (see internal/graph).
type (
	// Graph is the input graph.
	Graph = graph.Graph
	// Vertex is one vertex with ID, adjacency, label and attributes.
	Vertex = graph.Vertex
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
)

// Runtime types (see internal/cluster).
type (
	// Config controls a job (workers, threads, cache, LSH, stealing, ...).
	Config = cluster.Config
	// Result summarizes a finished job.
	Result = cluster.Result
	// Job is a running job handle.
	Job = cluster.Job
)

// Run executes algo over g with the given configuration and waits for the
// result. Zero-valued Config fields get production defaults.
func Run(g *Graph, algo Algorithm, cfg Config) (*Result, error) {
	return cluster.Run(g, algo, cfg)
}

// Start launches a job without waiting; use Job.Wait for the result.
func Start(g *Graph, algo Algorithm, cfg Config) (*Job, error) {
	return cluster.Start(g, algo, cfg)
}

// NewGraph returns an empty graph with the given capacity hint.
func NewGraph(capacity int) *Graph { return graph.New(capacity) }

// LoadGraph reads a graph from a text adjacency-list file (plain or
// attributed format; see internal/graph).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }
